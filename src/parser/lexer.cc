#include "parser/lexer.h"

#include <cctype>

namespace mapinv {

std::string Token::Describe() const {
  switch (kind) {
    case TokenKind::kIdent:
      return "identifier '" + text + "'";
    case TokenKind::kNumber:
      return "number " + text;
    case TokenKind::kString:
      return "string '" + text + "'";
    case TokenKind::kLParen:
      return "'('";
    case TokenKind::kRParen:
      return "')'";
    case TokenKind::kLBrace:
      return "'{'";
    case TokenKind::kRBrace:
      return "'}'";
    case TokenKind::kComma:
      return "','";
    case TokenKind::kArrow:
      return "'->'";
    case TokenKind::kTurnstile:
      return "':-'";
    case TokenKind::kPipe:
      return "'|'";
    case TokenKind::kEq:
      return "'='";
    case TokenKind::kNeq:
      return "'!='";
    case TokenKind::kDot:
      return "'.'";
    case TokenKind::kSeparator:
      return "end of statement";
    case TokenKind::kEnd:
      return "end of input";
  }
  return "<token>";
}

Result<std::vector<Token>> Lex(std::string_view text) {
  std::vector<Token> out;
  int line = 1, column = 1;
  size_t i = 0;
  auto push = [&](TokenKind kind, std::string payload = "") {
    out.push_back(Token{kind, std::move(payload), line, column});
  };
  auto error = [&](const std::string& message) {
    return Status::ParseError(message + " at line " + std::to_string(line) +
                              ", column " + std::to_string(column));
  };
  auto push_separator = [&] {
    if (!out.empty() && out.back().kind != TokenKind::kSeparator) {
      push(TokenKind::kSeparator);
    }
  };
  while (i < text.size()) {
    char c = text[i];
    if (c == '\n') {
      push_separator();
      ++i;
      ++line;
      column = 1;
      continue;
    }
    if (c == ';') {
      push_separator();
      ++i;
      ++column;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r') {
      ++i;
      ++column;
      continue;
    }
    if (c == '#') {
      while (i < text.size() && text[i] != '\n') ++i;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '?') {
      // '?' may only lead: it marks machine-generated variable names, which
      // must stay parseable so printed mappings round-trip.
      size_t start = i;
      if (c == '?') ++i;
      while (i < text.size() &&
             (std::isalnum(static_cast<unsigned char>(text[i])) ||
              text[i] == '_')) {
        ++i;
      }
      if (i == start + 1 && c == '?') {
        return error("'?' must be followed by an identifier");
      }
      push(TokenKind::kIdent, std::string(text.substr(start, i - start)));
      column += static_cast<int>(i - start);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      while (i < text.size() &&
             std::isdigit(static_cast<unsigned char>(text[i]))) {
        ++i;
      }
      push(TokenKind::kNumber, std::string(text.substr(start, i - start)));
      column += static_cast<int>(i - start);
      continue;
    }
    if (c == '\'') {
      size_t start = ++i;
      while (i < text.size() && text[i] != '\'' && text[i] != '\n') ++i;
      if (i >= text.size() || text[i] != '\'') {
        return error("unterminated string literal");
      }
      push(TokenKind::kString, std::string(text.substr(start, i - start)));
      column += static_cast<int>(i - start) + 2;
      ++i;
      continue;
    }
    switch (c) {
      case '(':
        push(TokenKind::kLParen);
        break;
      case ')':
        push(TokenKind::kRParen);
        break;
      case '{':
        push(TokenKind::kLBrace);
        break;
      case '}':
        push(TokenKind::kRBrace);
        break;
      case ',':
        push(TokenKind::kComma);
        break;
      case '|':
        push(TokenKind::kPipe);
        break;
      case '=':
        push(TokenKind::kEq);
        break;
      case '.':
        push(TokenKind::kDot);
        break;
      case '-':
        if (i + 1 < text.size() && text[i + 1] == '>') {
          push(TokenKind::kArrow);
          ++i;
          ++column;
        } else {
          return error("expected '->' after '-'");
        }
        break;
      case ':':
        if (i + 1 < text.size() && text[i + 1] == '-') {
          push(TokenKind::kTurnstile);
          ++i;
          ++column;
        } else {
          return error("expected ':-' after ':'");
        }
        break;
      case '!':
        if (i + 1 < text.size() && text[i + 1] == '=') {
          push(TokenKind::kNeq);
          ++i;
          ++column;
        } else {
          return error("expected '!=' after '!'");
        }
        break;
      default:
        return error(std::string("unexpected character '") + c + "'");
    }
    ++i;
    ++column;
  }
  // Trailing separator (if any) is dropped; terminate with kEnd.
  if (!out.empty() && out.back().kind == TokenKind::kSeparator) out.pop_back();
  out.push_back(Token{TokenKind::kEnd, "", line, column});
  return out;
}

}  // namespace mapinv
