/// \file lexer.h
/// \brief Tokeniser for the mapinv text syntax (see parser.h).

#ifndef MAPINV_PARSER_LEXER_H_
#define MAPINV_PARSER_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "base/status.h"

namespace mapinv {

enum class TokenKind {
  kIdent,      // R, x, EXISTS (keyword detection is the parser's job)
  kNumber,     // 123
  kString,     // 'alice'
  kLParen,
  kRParen,
  kLBrace,
  kRBrace,
  kComma,
  kArrow,      // ->
  kTurnstile,  // :-
  kPipe,       // |
  kEq,         // =
  kNeq,        // !=
  kDot,        // .
  kSeparator,  // newline or ';'
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;  // identifier / number / string payload
  int line = 1;
  int column = 1;

  std::string Describe() const;
};

/// \brief Tokenises the input. '#' comments run to end of line; runs of
/// newlines/';' collapse into a single kSeparator. Fails on unknown
/// characters and unterminated strings.
Result<std::vector<Token>> Lex(std::string_view text);

}  // namespace mapinv

#endif  // MAPINV_PARSER_LEXER_H_
