/// \file skolemize.h
/// \brief Skolemisation of tgds into plain SO-tgd rules.
///
/// Two variants are used in the library:
///  * kAllPremiseVars — the paper's linear-time translation of tgds into a
///    plain SO-tgd (Section 5.1): each existential variable y of a tgd
///    becomes f_y(x̄) over *all* premise variables, exactly as in the
///    Takes/Enrollment example (rule (6) → Takes(n,c) → Enrollment(f(n,c),c)).
///  * kFrontierVars — Skolem arguments restricted to the frontier (premise
///    variables that reach the conclusion). This is the semi-oblivious-chase
///    Skolemisation used by the rewriting engine: it identifies firings that
///    agree on the frontier, which is what makes unification-based rewriting
///    produce exactly the certain-answer rewriting.

#ifndef MAPINV_REWRITE_SKOLEMIZE_H_
#define MAPINV_REWRITE_SKOLEMIZE_H_

#include "base/status.h"
#include "logic/mapping.h"

namespace mapinv {

enum class SkolemArgs { kAllPremiseVars, kFrontierVars };

/// \brief Skolemises a set of tgds into plain SO-tgd rules. Skolem function
/// names are generated fresh ("sk%<n>"); one function per (tgd, existential
/// variable) pair.
SOTgd SkolemizeTgds(const std::vector<Tgd>& tgds, SkolemArgs args);

/// \brief The paper's linear-time translation: tgds → plain SO-tgd mapping
/// (Section 5.1). Uses kAllPremiseVars.
Result<SOTgdMapping> TgdsToPlainSOTgd(const TgdMapping& mapping);

}  // namespace mapinv

#endif  // MAPINV_REWRITE_SKOLEMIZE_H_
