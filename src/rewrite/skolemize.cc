#include "rewrite/skolemize.h"

#include <unordered_map>

namespace mapinv {

SOTgd SkolemizeTgds(const std::vector<Tgd>& tgds, SkolemArgs args) {
  SOTgd out;
  FreshFunctionGen gen("sk");
  for (const Tgd& tgd : tgds) {
    std::vector<VarId> arg_vars = (args == SkolemArgs::kAllPremiseVars)
                                      ? tgd.PremiseVars()
                                      : tgd.FrontierVars();
    std::vector<Term> arg_terms;
    arg_terms.reserve(arg_vars.size());
    for (VarId v : arg_vars) arg_terms.push_back(Term::Var(v));

    std::unordered_map<VarId, Term> skolems;
    for (VarId y : tgd.ExistentialVars()) {
      skolems.emplace(y, Term::Fn(gen.Next(), arg_terms));
    }

    SORule rule;
    rule.premise = tgd.premise;
    rule.conclusion.reserve(tgd.conclusion.size());
    for (const Atom& atom : tgd.conclusion) {
      Atom a;
      a.relation = atom.relation;
      a.terms.reserve(atom.terms.size());
      for (const Term& t : atom.terms) {
        auto it = skolems.find(t.var());
        a.terms.push_back(it == skolems.end() ? t : it->second);
      }
      rule.conclusion.push_back(std::move(a));
    }
    out.rules.push_back(std::move(rule));
  }
  return out;
}

Result<SOTgdMapping> TgdsToPlainSOTgd(const TgdMapping& mapping) {
  MAPINV_RETURN_NOT_OK(mapping.Validate());
  // A tgd with an empty frontier and an existential-only conclusion still
  // Skolemises fine: the Skolem functions take all premise variables, which
  // are never empty (premises are non-empty by validation).
  SOTgdMapping out;
  out.source = mapping.source;
  out.target = mapping.target;
  out.so = SkolemizeTgds(mapping.tgds, SkolemArgs::kAllPremiseVars);
  MAPINV_RETURN_NOT_OK(out.Validate());
  return out;
}

}  // namespace mapinv
