#include "rewrite/rewrite.h"

#include <functional>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "engine/failpoint.h"
#include "engine/trace.h"
#include "eval/containment.h"
#include "logic/substitution.h"
#include "rewrite/skolemize.h"

namespace mapinv {

namespace {

FailPoint fp_rewrite_entry("rewrite/entry");
FailPoint fp_rewrite_disjunct("rewrite/disjunct");

// One way to resolve a single query atom: a Skolemised rule together with
// the index of the conclusion atom to unify against.
struct HeadChoice {
  const SORule* rule;
  size_t conclusion_index;
};

// Shared implementation: resolves the query atoms against the heads of the
// (Skolemised or user-authored) plain SO-tgd rules.
Result<UnionCq> RewriteAgainstRules(const SOTgd& skolemized,
                                    const ConjunctiveQuery& target_query,
                                    const ExecutionOptions& options);

}  // namespace

Result<UnionCq> RewriteOverSource(const TgdMapping& mapping,
                                  const ConjunctiveQuery& target_query,
                                  const ExecutionOptions& options) {
  MAPINV_ASSIGN_OR_RETURN(SourceRewriter rewriter,
                          SourceRewriter::Prepare(mapping));
  return rewriter.Rewrite(target_query, options);
}

Result<SourceRewriter> SourceRewriter::Prepare(const TgdMapping& mapping) {
  MAPINV_RETURN_NOT_OK(mapping.Validate());
  return SourceRewriter(SkolemizeTgds(mapping.tgds, SkolemArgs::kFrontierVars),
                        mapping.target);
}

Result<UnionCq> SourceRewriter::Rewrite(const ConjunctiveQuery& target_query,
                                        const ExecutionOptions& options) const {
  MAPINV_RETURN_NOT_OK(target_query.Validate(*target_));
  return RewriteAgainstRules(skolemized_, target_query, options);
}

Result<UnionCq> RewriteOverSourceSO(const SOTgdMapping& mapping,
                                    const ConjunctiveQuery& target_query,
                                    const ExecutionOptions& options) {
  MAPINV_RETURN_NOT_OK(mapping.Validate());
  MAPINV_RETURN_NOT_OK(target_query.Validate(*mapping.target));
  return RewriteAgainstRules(mapping.so, target_query, options);
}

namespace {

Result<UnionCq> RewriteAgainstRules(const SOTgd& skolemized,
                                    const ConjunctiveQuery& target_query,
                                    const ExecutionOptions& options) {
  ScopedTraceSpan span(options, "rewrite");
  MAPINV_FAILPOINT(fp_rewrite_entry);
  // Candidate head choices per query atom.
  std::vector<std::vector<HeadChoice>> choices(target_query.atoms.size());
  for (size_t i = 0; i < target_query.atoms.size(); ++i) {
    for (const SORule& rule : skolemized.rules) {
      for (size_t c = 0; c < rule.conclusion.size(); ++c) {
        if (rule.conclusion[c].relation == target_query.atoms[i].relation) {
          choices[i].push_back(HeadChoice{&rule, c});
        }
      }
    }
    if (choices[i].empty()) {
      // Some query atom can never be produced: the rewriting is empty.
      UnionCq empty;
      empty.name = target_query.name;
      empty.head = target_query.head;
      return empty;
    }
  }

  UnionCq out;
  out.name = target_query.name;
  out.head = target_query.head;

  // Enumerate all choice combinations with backtracking. Renaming draws
  // from the options' symbol scope so rewritings are reproducible under an
  // engine-scoped context. The deadline is the one carried by an enclosing
  // pipeline stage when there is one (Invert's rewriting loop shares a
  // single budget with the other stages), else resolved here.
  ExecDeadline entry_deadline(options.deadline_ms);
  const ExecDeadline& deadline = CarriedDeadline(options, entry_deadline);
  FreshVarGen gen("r", options.symbols);
  size_t produced = 0;

  std::function<Status(size_t, std::vector<std::pair<Term, Term>>,
                       std::vector<Atom>)>
      recurse = [&](size_t i, std::vector<std::pair<Term, Term>> goals,
                    std::vector<Atom> premises) -> Status {
    MAPINV_RETURN_NOT_OK(PollPhaseInterrupt(options, deadline, "rewrite"));
    if (i == target_query.atoms.size()) {
      MAPINV_FAILPOINT(fp_rewrite_disjunct);
      if (++produced > options.max_disjuncts) {
        return PhaseExhausted("rewrite",
                              "exceeded max_disjuncts = " +
                                  std::to_string(options.max_disjuncts));
      }
      auto unified = Unify(goals);
      if (!unified.ok()) return Status::OK();  // clash: prune combination
      const Substitution& sigma = *unified;

      // Resolve head variables; drop the disjunct if any resolves to a
      // Skolem term.
      std::vector<Term> head_terms;
      head_terms.reserve(target_query.head.size());
      for (VarId h : target_query.head) {
        Term t = sigma.Resolve(h);
        if (t.is_function()) return Status::OK();  // invented value
        head_terms.push_back(t);
      }
      // A premise variable resolving to a Skolem term would require a source
      // value to coincide with an invented null — unsatisfiable over the
      // universal instance, so the whole combination is pruned.
      std::vector<Atom> resolved_premises;
      resolved_premises.reserve(premises.size());
      for (const Atom& premise_atom : premises) {
        Atom resolved = sigma.Apply(premise_atom);
        for (const Term& t : resolved.terms) {
          if (t.is_function()) return Status::OK();  // prune
        }
        resolved_premises.push_back(std::move(resolved));
      }

      // Representative head variable per resolved term.
      std::map<Term, VarId> rep;
      std::vector<VarPair> equalities;
      Substitution to_head;
      for (size_t j = 0; j < head_terms.size(); ++j) {
        VarId hj = target_query.head[j];
        auto [it, inserted] = rep.emplace(head_terms[j], hj);
        if (inserted) {
          // First head variable to resolve to this term: rename the body
          // occurrences of the term's variable to the head variable (skip
          // the degenerate self-binding).
          if (head_terms[j].var() != hj) {
            to_head.Bind(head_terms[j].var(), Term::Var(hj));
          }
        } else if (it->second != hj) {
          equalities.emplace_back(it->second, hj);
        }
      }

      CqDisjunct disjunct;
      disjunct.equalities = std::move(equalities);
      for (Atom& resolved : resolved_premises) {
        for (Term& t : resolved.terms) t = to_head.Apply(t);
        disjunct.atoms.push_back(std::move(resolved));
      }
      out.disjuncts.push_back(std::move(disjunct));
      return Status::OK();
    }

    for (const HeadChoice& choice : choices[i]) {
      // Rename the rule apart for this use.
      Substitution renaming =
          RenameApart(choice.rule->PremiseVars(), &gen);
      Atom head = renaming.Apply(choice.rule->conclusion[choice.conclusion_index]);
      std::vector<std::pair<Term, Term>> new_goals = goals;
      for (size_t p = 0; p < head.terms.size(); ++p) {
        new_goals.emplace_back(target_query.atoms[i].terms[p], head.terms[p]);
      }
      std::vector<Atom> new_premises = premises;
      for (const Atom& pa : choice.rule->premise) {
        new_premises.push_back(renaming.Apply(pa));
      }
      MAPINV_RETURN_NOT_OK(recurse(i + 1, std::move(new_goals),
                                   std::move(new_premises)));
    }
    return Status::OK();
  };

  // In kPartial mode exhaustion keeps the disjuncts completed so far: a
  // disjunct subset of the union is a sound under-approximation for
  // certain-answer rewriting. NOTE this is exactly the degradation
  // MaximumRecovery must not consume — it forces kFail on its inner
  // rewritings and drops the whole dependency instead (a truncated rewriting
  // as a reverse-dependency disjunct set would *strengthen* the dependency).
  if (Status rec = recurse(0, {}, {}); !rec.ok()) {
    if (!DegradeToPartial(options, rec)) return rec;
  }

  if (options.minimize) {
    ExecutionOptions inner = options;
    inner.deadline = &deadline;
    return MinimizeUnionCq(out, inner);
  }
  return out;
}

}  // namespace

}  // namespace mapinv
