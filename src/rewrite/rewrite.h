/// \file rewrite.h
/// \brief Certain-answer rewriting of target conjunctive queries over the
/// source — the REWRITE(Σ, Q) black box of Section 4.1.
///
/// Given a mapping Σ of s-t tgds and a target CQ Q(x̄), produces a UCQ=
/// query Q'(x̄) over the source with Q'(I) = certain_Σ(Q, I) for every
/// source instance I. Implementation: Skolemise Σ with frontier-variable
/// Skolem terms (semi-oblivious chase normal form) and resolve every atom of
/// Q against the rule heads in all possible ways (inverse-rules unfolding in
/// the style of Duschka–Genesereth [8]); unification failures prune choices,
/// a head variable resolving to a Skolem term prunes the disjunct (an
/// invented value can never be a certain answer), and head variables that
/// unify with each other surface as the free-variable equalities of the
/// paper's UCQ= normal form.
///
/// The disjunct count is Π_i (#matching head atoms for atom i) — worst-case
/// exponential in |Q|, which is exactly why MaximumRecovery (Section 4)
/// inherits exponential cost while PolySOInverse (Section 5) avoids
/// rewriting altogether.

#ifndef MAPINV_REWRITE_REWRITE_H_
#define MAPINV_REWRITE_REWRITE_H_

#include "base/status.h"
#include "engine/execution_options.h"
#include "logic/cq.h"
#include "logic/mapping.h"

namespace mapinv {

/// \brief Computes the UCQ= source rewriting of `target_query` under the
/// mapping's tgds. The result's head is target_query.head.
Result<UnionCq> RewriteOverSource(const TgdMapping& mapping,
                                  const ConjunctiveQuery& target_query,
                                  const ExecutionOptions& options = {});

/// \brief Reusable rewriter over one mapping: validates and Skolemises the
/// tgds once, then rewrites any number of target queries against the same
/// rule set. MaximumRecovery rewrites one query per tgd — preparing once
/// replaces its per-query re-validation and re-Skolemisation of the whole
/// mapping (quadratic in mapping size) with a single pass.
class SourceRewriter {
 public:
  static Result<SourceRewriter> Prepare(const TgdMapping& mapping);

  /// Same contract as RewriteOverSource for a query over the prepared
  /// mapping's target schema.
  Result<UnionCq> Rewrite(const ConjunctiveQuery& target_query,
                          const ExecutionOptions& options = {}) const;

 private:
  SourceRewriter(SOTgd skolemized, std::shared_ptr<const Schema> target)
      : skolemized_(std::move(skolemized)), target_(std::move(target)) {}

  SOTgd skolemized_;
  std::shared_ptr<const Schema> target_;
};

/// \brief Rewriting over an arbitrary plain SO-tgd mapping: the same
/// resolution engine against rule heads with (shared) function terms. A
/// function symbol used by several rules identifies their invented values,
/// so e.g. Takes(n,c) → Enrollment(f(n),c) rewrites the self-join
/// Enrollment(s,c₁) ∧ Enrollment(s,c₂) into Takes(n,c₁) ∧ Takes(n,c₂) —
/// tgd-derived Skolems never share symbols, which is exactly the extra
/// expressiveness of Section 5.1.
Result<UnionCq> RewriteOverSourceSO(const SOTgdMapping& mapping,
                                    const ConjunctiveQuery& target_query,
                                    const ExecutionOptions& options = {});

}  // namespace mapinv

#endif  // MAPINV_REWRITE_REWRITE_H_
