/// \file atom.h
/// \brief Relational atoms over terms.

#ifndef MAPINV_LOGIC_ATOM_H_
#define MAPINV_LOGIC_ATOM_H_

#include <string>
#include <vector>

#include "base/status.h"
#include "base/symbols.h"
#include "data/schema.h"
#include "logic/term.h"

namespace mapinv {

/// \brief A relational atom R(t1, ..., tk). The relation is stored as an
/// interned name; it is resolved against a concrete Schema only when the
/// atom is evaluated or chased.
struct Atom {
  RelName relation = 0;
  std::vector<Term> terms;

  Atom() = default;
  Atom(RelName r, std::vector<Term> ts) : relation(r), terms(std::move(ts)) {}
  Atom(std::string_view name, std::vector<Term> ts)
      : relation(InternRelation(name)), terms(std::move(ts)) {}

  /// Convenience constructor from variable names.
  static Atom Vars(std::string_view name,
                   const std::vector<std::string>& var_names) {
    std::vector<Term> ts;
    ts.reserve(var_names.size());
    for (const auto& v : var_names) ts.push_back(Term::Var(v));
    return Atom(name, std::move(ts));
  }

  size_t arity() const { return terms.size(); }

  /// True if every argument is a variable.
  bool AllVariables() const {
    for (const Term& t : terms) {
      if (!t.is_variable()) return false;
    }
    return true;
  }

  /// Appends each variable occurrence (with repeats) to `out`.
  void CollectVars(std::vector<VarId>* out) const {
    for (const Term& t : terms) t.CollectVars(out);
  }

  /// Checks that the relation exists in `schema` with matching arity.
  Status Validate(const Schema& schema) const;

  std::string ToString() const;

  friend bool operator==(const Atom& a, const Atom& b) {
    return a.relation == b.relation && a.terms == b.terms;
  }
  friend bool operator!=(const Atom& a, const Atom& b) { return !(a == b); }
  friend bool operator<(const Atom& a, const Atom& b) {
    if (a.relation != b.relation) return a.relation < b.relation;
    return std::lexicographical_compare(a.terms.begin(), a.terms.end(),
                                        b.terms.begin(), b.terms.end());
  }

  size_t Hash() const {
    size_t seed = relation;
    for (const Term& t : terms) HashCombine(seed, t.Hash());
    return seed;
  }
};

struct AtomHash {
  size_t operator()(const Atom& a) const { return a.Hash(); }
};

/// Deduplicated, order-preserving list of all variables in a sequence of
/// atoms.
std::vector<VarId> CollectDistinctVars(const std::vector<Atom>& atoms);

/// Renders a comma-separated conjunction of atoms.
std::string AtomsToString(const std::vector<Atom>& atoms);

}  // namespace mapinv

#endif  // MAPINV_LOGIC_ATOM_H_
