#include "logic/term.h"

#include <algorithm>

namespace mapinv {

bool Term::IsPlain() const {
  if (is_variable()) return true;
  if (is_constant()) return false;
  return std::all_of(args_.begin(), args_.end(),
                     [](const Term& t) { return t.is_variable(); });
}

void Term::CollectVars(std::vector<VarId>* out) const {
  switch (kind_) {
    case Kind::kVariable:
      out->push_back(var_);
      return;
    case Kind::kConstant:
      return;
    case Kind::kFunction:
      for (const Term& a : args_) a.CollectVars(out);
      return;
  }
}

bool Term::Mentions(VarId v) const {
  switch (kind_) {
    case Kind::kVariable:
      return var_ == v;
    case Kind::kConstant:
      return false;
    case Kind::kFunction:
      for (const Term& a : args_) {
        if (a.Mentions(v)) return true;
      }
      return false;
  }
  return false;
}

uint32_t Term::Depth() const {
  if (!is_function()) return 0;
  uint32_t d = 0;
  for (const Term& a : args_) d = std::max(d, a.Depth());
  return d + 1;
}

std::string Term::ToString() const {
  switch (kind_) {
    case Kind::kVariable:
      return VarName(var_);
    case Kind::kConstant:
      // Quoted unless numeric: a bare identifier here would re-parse as a
      // variable, not a constant.
      return RenderTermValue(value_);
    case Kind::kFunction: {
      std::string out = FunctionName(fn_) + "(";
      for (size_t i = 0; i < args_.size(); ++i) {
        if (i > 0) out += ",";
        out += args_[i].ToString();
      }
      out += ")";
      return out;
    }
  }
  return "<bad-term>";
}

bool operator==(const Term& a, const Term& b) {
  if (a.kind_ != b.kind_) return false;
  switch (a.kind_) {
    case Term::Kind::kVariable:
      return a.var_ == b.var_;
    case Term::Kind::kConstant:
      return a.value_ == b.value_;
    case Term::Kind::kFunction:
      return a.fn_ == b.fn_ && a.args_ == b.args_;
  }
  return false;
}

bool operator<(const Term& a, const Term& b) {
  if (a.kind_ != b.kind_) return a.kind_ < b.kind_;
  switch (a.kind_) {
    case Term::Kind::kVariable:
      return a.var_ < b.var_;
    case Term::Kind::kConstant:
      return a.value_ < b.value_;
    case Term::Kind::kFunction:
      if (a.fn_ != b.fn_) return a.fn_ < b.fn_;
      return std::lexicographical_compare(a.args_.begin(), a.args_.end(),
                                          b.args_.begin(), b.args_.end());
  }
  return false;
}

size_t Term::Hash() const {
  size_t seed = static_cast<size_t>(kind_) + 17;
  switch (kind_) {
    case Kind::kVariable:
      HashCombine(seed, var_);
      break;
    case Kind::kConstant:
      HashCombine(seed, value_.Hash());
      break;
    case Kind::kFunction:
      HashCombine(seed, fn_);
      for (const Term& a : args_) HashCombine(seed, a.Hash());
      break;
  }
  return seed;
}

}  // namespace mapinv
