/// \file cq.h
/// \brief Conjunctive queries and unions of conjunctive queries (UCQ, UCQ=).
///
/// A ConjunctiveQuery has a head (tuple of free variables, repeats allowed)
/// and a body of relational atoms; body variables not in the head are
/// implicitly existentially quantified. UCQ= disjuncts additionally carry
/// equalities between *free* variables — the paper (Section 4) normalises
/// UCQ= rewritings so that equalities between existential variables have been
/// substituted away, and we maintain that invariant.

#ifndef MAPINV_LOGIC_CQ_H_
#define MAPINV_LOGIC_CQ_H_

#include <string>
#include <utility>
#include <vector>

#include "base/status.h"
#include "logic/atom.h"

namespace mapinv {

/// An unordered equality/inequality between two variables.
using VarPair = std::pair<VarId, VarId>;

/// \brief A conjunctive query Q(x̄) :- body.
struct ConjunctiveQuery {
  /// Head predicate name, for printing.
  std::string name = "Q";
  /// Free variables, in answer-tuple order (repeats allowed).
  std::vector<VarId> head;
  /// Body atoms. Terms must be variables (validated); constants are not
  /// needed by any algorithm in the paper and are rejected for clarity.
  std::vector<Atom> atoms;

  /// All distinct variables in the body, in order of first occurrence.
  std::vector<VarId> BodyVars() const { return CollectDistinctVars(atoms); }

  /// Body variables that are not free.
  std::vector<VarId> ExistentialVars() const;

  /// Checks: atoms valid against `schema`, every atom argument a variable,
  /// and every head variable occurs in the body (safety).
  Status Validate(const Schema& schema) const;

  /// "Q(x) :- R(x,y), S(y,z)".
  std::string ToString() const;

  friend bool operator==(const ConjunctiveQuery& a, const ConjunctiveQuery& b) {
    return a.head == b.head && a.atoms == b.atoms;
  }
};

/// \brief One disjunct of a UCQ= / UCQ≠ query: atoms plus equalities
/// between free variables and (for the UCQ≠ class used by Theorem 3.5)
/// inequalities between body variables. Free variables are supplied by the
/// enclosing UCQ's head. Rewriting outputs (Section 4) never carry
/// inequalities; reverse-dependency conclusions must not either
/// (ReverseDependency::Validate enforces this).
struct CqDisjunct {
  std::vector<Atom> atoms;
  std::vector<VarPair> equalities;
  std::vector<VarPair> inequalities;

  friend bool operator==(const CqDisjunct& a, const CqDisjunct& b) {
    return a.atoms == b.atoms && a.equalities == b.equalities &&
           a.inequalities == b.inequalities;
  }

  /// "R(x,y), x = z, x != w" (no head).
  std::string ToString() const;
};

/// \brief A union of conjunctive queries with equalities (UCQ=). All
/// disjuncts share the head tuple.
struct UnionCq {
  std::string name = "Q";
  std::vector<VarId> head;
  std::vector<CqDisjunct> disjuncts;

  /// Checks each disjunct: atoms valid against `schema`, all-variable
  /// arguments; every head variable occurs in the disjunct's atoms or is
  /// linked by its equalities to a variable that does (paper's safety
  /// condition); equality endpoints are head variables.
  Status Validate(const Schema& schema) const;

  bool empty() const { return disjuncts.empty(); }

  /// "Q(x,y) :- A(x,y) | B(x), x = y".
  std::string ToString() const;
};

/// Renders "x = y" pairs.
std::string EqualitiesToString(const std::vector<VarPair>& eqs,
                               const char* op = " = ");

}  // namespace mapinv

#endif  // MAPINV_LOGIC_CQ_H_
