/// \file substitution.h
/// \brief Variable substitutions and first-order unification.
///
/// Substitutions map variables to terms and are used by the rewriting engine
/// (resolving target query atoms against Skolemised tgd heads) and by SO-tgd
/// composition. Unification implements MGU with occurs check; bindings are
/// kept in triangular (solved) form and resolved transitively on Apply.

#ifndef MAPINV_LOGIC_SUBSTITUTION_H_
#define MAPINV_LOGIC_SUBSTITUTION_H_

#include <unordered_map>
#include <utility>
#include <vector>

#include "base/status.h"
#include "logic/atom.h"
#include "logic/term.h"

namespace mapinv {

/// \brief A mapping from variables to terms.
class Substitution {
 public:
  Substitution() = default;

  bool Has(VarId v) const { return map_.contains(v); }
  bool empty() const { return map_.empty(); }
  size_t size() const { return map_.size(); }

  /// Binds `v` to `t` (overwrites any existing binding).
  void Bind(VarId v, Term t) { map_[v] = std::move(t); }

  /// The raw (triangular) binding of `v`; `v` must be bound.
  const Term& RawBinding(VarId v) const { return map_.at(v); }

  /// Applies the substitution to a term, resolving chains of variable
  /// bindings transitively. The substitution must be acyclic (guaranteed for
  /// unifier output thanks to the occurs check).
  Term Apply(const Term& t) const;

  /// Applies the substitution to every argument of an atom.
  Atom Apply(const Atom& a) const;

  /// Applies the substitution to every atom.
  std::vector<Atom> Apply(const std::vector<Atom>& atoms) const;

  /// Fully resolved binding of a variable (Apply on Term::Var(v)).
  Term Resolve(VarId v) const { return Apply(Term::Var(v)); }

  std::string ToString() const;

 private:
  std::unordered_map<VarId, Term> map_;
};

/// \brief Computes a most general unifier for the given term-pair equations.
///
/// Returns kInvalidArgument-free failure as a Status with code kNotFound when
/// the equations are not unifiable (clash or occurs-check violation); any
/// other status code indicates malformed input.
Result<Substitution> Unify(const std::vector<std::pair<Term, Term>>& goals);

/// \brief Unifies two atom sequences position-wise (same relations/arities
/// required); convenience over Unify.
Result<Substitution> UnifyAtoms(const Atom& a, const Atom& b);

/// \brief Builds a renaming that maps every variable in `vars` to a fresh
/// variable from `gen`.
Substitution RenameApart(const std::vector<VarId>& vars, FreshVarGen* gen);

}  // namespace mapinv

#endif  // MAPINV_LOGIC_SUBSTITUTION_H_
