#include "logic/dependency.h"

#include <algorithm>
#include <unordered_set>

namespace mapinv {

namespace {

Status ValidateVariableAtoms(const std::vector<Atom>& atoms,
                             const Schema& schema, const char* side) {
  if (atoms.empty()) {
    return Status::Malformed(std::string("dependency has an empty ") + side);
  }
  for (const Atom& a : atoms) {
    MAPINV_RETURN_NOT_OK(a.Validate(schema));
    if (!a.AllVariables()) {
      return Status::Malformed(std::string(side) + " atom " + a.ToString() +
                               " has a non-variable argument");
    }
  }
  return Status::OK();
}

std::string ExistsPrefix(const std::vector<VarId>& vars) {
  if (vars.empty()) return "";
  std::string out = "EXISTS ";
  for (size_t i = 0; i < vars.size(); ++i) {
    if (i > 0) out += ",";
    out += VarName(vars[i]);
  }
  out += " . ";
  return out;
}

}  // namespace

std::vector<VarId> Tgd::FrontierVars() const {
  std::vector<VarId> conclusion_vars = CollectDistinctVars(conclusion);
  std::unordered_set<VarId> cset(conclusion_vars.begin(),
                                 conclusion_vars.end());
  std::vector<VarId> out;
  for (VarId v : PremiseVars()) {
    if (cset.contains(v)) out.push_back(v);
  }
  return out;
}

std::vector<VarId> Tgd::ExistentialVars() const {
  std::vector<VarId> premise_vars = PremiseVars();
  std::unordered_set<VarId> pset(premise_vars.begin(), premise_vars.end());
  std::vector<VarId> out;
  for (VarId v : CollectDistinctVars(conclusion)) {
    if (!pset.contains(v)) out.push_back(v);
  }
  return out;
}

Status Tgd::Validate(const Schema& source, const Schema& target) const {
  MAPINV_RETURN_NOT_OK(ValidateVariableAtoms(premise, source, "premise"));
  MAPINV_RETURN_NOT_OK(ValidateVariableAtoms(conclusion, target, "conclusion"));
  return Status::OK();
}

std::string Tgd::ToString() const {
  return AtomsToString(premise) + " -> " + ExistsPrefix(ExistentialVars()) +
         AtomsToString(conclusion);
}

Status ReverseDependency::Validate(const Schema& premise_schema,
                                   const Schema& conclusion_schema) const {
  MAPINV_RETURN_NOT_OK(
      ValidateVariableAtoms(premise, premise_schema, "premise"));
  if (disjuncts.empty()) {
    return Status::Malformed("reverse dependency has no conclusion disjunct");
  }
  // Validation runs over whole mappings (which can be Bell-number large
  // after partition expansion), so membership checks use a sorted vector
  // instead of building a hash set per dependency.
  std::vector<VarId> pvars = PremiseVars();
  std::sort(pvars.begin(), pvars.end());
  auto in_premise = [&pvars](VarId v) {
    return std::binary_search(pvars.begin(), pvars.end(), v);
  };
  for (VarId v : constant_vars) {
    if (!in_premise(v)) {
      return Status::Malformed("C(" + VarName(v) +
                               ") constrains a variable not in the premise");
    }
  }
  for (const VarPair& ne : inequalities) {
    if (!in_premise(ne.first) || !in_premise(ne.second)) {
      return Status::Malformed("inequality " + VarName(ne.first) + " != " +
                               VarName(ne.second) +
                               " mentions a variable not in the premise");
    }
  }
  for (const ReverseDisjunct& d : disjuncts) {
    MAPINV_RETURN_NOT_OK(
        ValidateVariableAtoms(d.atoms, conclusion_schema, "conclusion"));
    if (!d.inequalities.empty()) {
      return Status::Malformed(
          "reverse-dependency conclusions must not contain inequalities "
          "(the Section 4 languages place != in premises only)");
    }
    for (const VarPair& eq : d.equalities) {
      if (!in_premise(eq.first) || !in_premise(eq.second)) {
        return Status::Malformed("conclusion equality " + VarName(eq.first) +
                                 " = " + VarName(eq.second) +
                                 " mentions a variable not in the premise");
      }
    }
  }
  return Status::OK();
}

std::string ReverseDependency::ToString() const {
  std::string out = AtomsToString(premise);
  for (VarId v : constant_vars) out += ", C(" + VarName(v) + ")";
  if (!inequalities.empty()) {
    out += ", " + EqualitiesToString(inequalities, " != ");
  }
  out += " -> ";
  std::vector<VarId> pvars = PremiseVars();
  std::unordered_set<VarId> pset(pvars.begin(), pvars.end());
  for (size_t i = 0; i < disjuncts.size(); ++i) {
    if (i > 0) out += " | ";
    std::vector<VarId> exist;
    for (VarId v : CollectDistinctVars(disjuncts[i].atoms)) {
      if (!pset.contains(v)) exist.push_back(v);
    }
    out += ExistsPrefix(exist) + disjuncts[i].ToString();
  }
  return out;
}

std::string TgdsToString(const std::vector<Tgd>& tgds) {
  std::string out;
  for (const Tgd& t : tgds) {
    out += t.ToString();
    out += "\n";
  }
  return out;
}

std::string ReverseDepsToString(const std::vector<ReverseDependency>& deps) {
  std::string out;
  for (const ReverseDependency& d : deps) {
    out += d.ToString();
    out += "\n";
  }
  return out;
}

}  // namespace mapinv
