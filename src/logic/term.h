/// \file term.h
/// \brief First-order terms: variables, constants and function applications.
///
/// Plain SO-tgds (Section 5.1 of the paper) use *plain terms*: a variable or
/// a single function application over variables. General Terms here allow
/// arbitrary nesting, because composing two SO-tgd mappings by unfolding can
/// produce nested applications; the plain-ness restriction is validated where
/// the algorithms require it (see SOTgd::Validate).

#ifndef MAPINV_LOGIC_TERM_H_
#define MAPINV_LOGIC_TERM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/symbols.h"
#include "data/value.h"

namespace mapinv {

/// \brief A term: variable, constant, or function application.
class Term {
 public:
  enum class Kind { kVariable, kConstant, kFunction };

  /// Default term is the variable with id 0; present for containers only.
  Term() : kind_(Kind::kVariable), var_(0) {}

  static Term Var(VarId v) {
    Term t;
    t.kind_ = Kind::kVariable;
    t.var_ = v;
    return t;
  }
  static Term Var(std::string_view name) { return Var(InternVar(name)); }

  static Term Const(Value v) {
    Term t;
    t.kind_ = Kind::kConstant;
    t.value_ = v;
    return t;
  }

  static Term Fn(FunctionId fn, std::vector<Term> args) {
    Term t;
    t.kind_ = Kind::kFunction;
    t.fn_ = fn;
    t.args_ = std::move(args);
    return t;
  }
  static Term Fn(std::string_view name, std::vector<Term> args) {
    return Fn(InternFunction(name), std::move(args));
  }

  Kind kind() const { return kind_; }
  bool is_variable() const { return kind_ == Kind::kVariable; }
  bool is_constant() const { return kind_ == Kind::kConstant; }
  bool is_function() const { return kind_ == Kind::kFunction; }

  /// Valid only for variables.
  VarId var() const { return var_; }
  /// Valid only for constants.
  Value value() const { return value_; }
  /// Valid only for function applications.
  FunctionId fn() const { return fn_; }
  const std::vector<Term>& args() const { return args_; }

  /// True for a variable, or a function application whose arguments are all
  /// variables (the paper's "plain term").
  bool IsPlain() const;

  /// Appends every variable occurring in the term to `out` (with repeats).
  void CollectVars(std::vector<VarId>* out) const;

  /// True if variable `v` occurs anywhere in the term.
  bool Mentions(VarId v) const;

  /// Structural depth: 0 for variables/constants, 1 + max arg depth.
  uint32_t Depth() const;

  std::string ToString() const;

  friend bool operator==(const Term& a, const Term& b);
  friend bool operator!=(const Term& a, const Term& b) { return !(a == b); }
  friend bool operator<(const Term& a, const Term& b);

  size_t Hash() const;

 private:
  Kind kind_;
  VarId var_ = 0;
  Value value_;
  FunctionId fn_ = 0;
  std::vector<Term> args_;
};

struct TermHash {
  size_t operator()(const Term& t) const { return t.Hash(); }
};

/// \brief An equality or inequality between two terms (used in SO-inverse
/// dependency conclusions, Section 5.2).
struct TermEq {
  Term lhs;
  Term rhs;

  friend bool operator==(const TermEq& a, const TermEq& b) {
    return a.lhs == b.lhs && a.rhs == b.rhs;
  }

  std::string ToString(const char* op = "=") const {
    return lhs.ToString() + " " + op + " " + rhs.ToString();
  }
};

}  // namespace mapinv

#endif  // MAPINV_LOGIC_TERM_H_
