#include "logic/cq.h"

#include <algorithm>
#include <unordered_set>

namespace mapinv {

std::vector<VarId> ConjunctiveQuery::ExistentialVars() const {
  std::unordered_set<VarId> head_set(head.begin(), head.end());
  std::vector<VarId> out;
  for (VarId v : BodyVars()) {
    if (!head_set.contains(v)) out.push_back(v);
  }
  return out;
}

Status ConjunctiveQuery::Validate(const Schema& schema) const {
  for (const Atom& a : atoms) {
    MAPINV_RETURN_NOT_OK(a.Validate(schema));
    if (!a.AllVariables()) {
      return Status::Malformed("conjunctive query atom " + a.ToString() +
                               " has a non-variable argument");
    }
  }
  std::vector<VarId> body = BodyVars();
  std::unordered_set<VarId> body_set(body.begin(), body.end());
  for (VarId v : head) {
    if (!body_set.contains(v)) {
      return Status::Malformed("head variable " + VarName(v) +
                               " of query '" + name +
                               "' does not occur in the body");
    }
  }
  return Status::OK();
}

std::string ConjunctiveQuery::ToString() const {
  std::string out = name + "(";
  for (size_t i = 0; i < head.size(); ++i) {
    if (i > 0) out += ",";
    out += VarName(head[i]);
  }
  out += ") :- " + AtomsToString(atoms);
  return out;
}

std::string CqDisjunct::ToString() const {
  std::string out = AtomsToString(atoms);
  if (!equalities.empty()) {
    if (!out.empty()) out += ", ";
    out += EqualitiesToString(equalities);
  }
  if (!inequalities.empty()) {
    if (!out.empty()) out += ", ";
    out += EqualitiesToString(inequalities, " != ");
  }
  return out;
}

Status UnionCq::Validate(const Schema& schema) const {
  std::unordered_set<VarId> head_set(head.begin(), head.end());
  for (const CqDisjunct& d : disjuncts) {
    for (const Atom& a : d.atoms) {
      MAPINV_RETURN_NOT_OK(a.Validate(schema));
      if (!a.AllVariables()) {
        return Status::Malformed("UCQ disjunct atom " + a.ToString() +
                                 " has a non-variable argument");
      }
    }
    std::unordered_set<VarId> atom_vars;
    {
      std::vector<VarId> vs = CollectDistinctVars(d.atoms);
      atom_vars.insert(vs.begin(), vs.end());
    }
    for (const VarPair& eq : d.equalities) {
      if (!head_set.contains(eq.first) || !head_set.contains(eq.second)) {
        return Status::Malformed(
            "UCQ= equality " + VarName(eq.first) + " = " + VarName(eq.second) +
            " relates a non-head variable (paper normal form violated)");
      }
    }
    {
      std::unordered_set<VarId> body_vars;
      std::vector<VarId> vs = CollectDistinctVars(d.atoms);
      body_vars.insert(vs.begin(), vs.end());
      for (const VarPair& ne : d.inequalities) {
        if (!body_vars.contains(ne.first) || !body_vars.contains(ne.second)) {
          return Status::Malformed("UCQ≠ inequality " + VarName(ne.first) +
                                   " != " + VarName(ne.second) +
                                   " mentions a variable outside the atoms");
        }
      }
    }
    // Safety: every head variable must be grounded by an atom, directly or
    // through the disjunct's equality closure.
    for (VarId h : head) {
      if (atom_vars.contains(h)) continue;
      bool linked = false;
      constexpr VarId kNoVar = UINT32_MAX;
      // One-step closure suffices after normalisation, but take the full
      // closure to be safe.
      std::unordered_set<VarId> cls{h};
      bool changed = true;
      while (changed && !linked) {
        changed = false;
        for (const VarPair& eq : d.equalities) {
          VarId other = kNoVar;
          if (cls.contains(eq.first) && !cls.contains(eq.second)) {
            other = eq.second;
          } else if (cls.contains(eq.second) && !cls.contains(eq.first)) {
            other = eq.first;
          }
          if (other != kNoVar) {
            cls.insert(other);
            changed = true;
            if (atom_vars.contains(other)) {
              linked = true;
              break;
            }
          }
        }
      }
      if (!linked) {
        return Status::Malformed("unsafe head variable " + VarName(h) +
                                 " in UCQ disjunct { " + d.ToString() + " }");
      }
    }
  }
  return Status::OK();
}

std::string UnionCq::ToString() const {
  std::string out = name + "(";
  for (size_t i = 0; i < head.size(); ++i) {
    if (i > 0) out += ",";
    out += VarName(head[i]);
  }
  out += ") :- ";
  for (size_t i = 0; i < disjuncts.size(); ++i) {
    if (i > 0) out += " | ";
    out += disjuncts[i].ToString();
  }
  if (disjuncts.empty()) out += "<empty>";
  return out;
}

std::string EqualitiesToString(const std::vector<VarPair>& eqs,
                               const char* op) {
  std::string out;
  for (size_t i = 0; i < eqs.size(); ++i) {
    if (i > 0) out += ", ";
    out += VarName(eqs[i].first) + op + VarName(eqs[i].second);
  }
  return out;
}

}  // namespace mapinv
