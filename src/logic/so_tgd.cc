#include "logic/so_tgd.h"

#include <unordered_set>

namespace mapinv {

std::string SORule::ToString() const {
  return AtomsToString(premise) + " -> " + AtomsToString(conclusion);
}

Result<std::map<FunctionId, uint32_t>> SOTgd::Functions() const {
  std::map<FunctionId, uint32_t> out;
  for (const SORule& r : rules) {
    for (const Atom& a : r.conclusion) {
      for (const Term& t : a.terms) {
        if (!t.is_function()) continue;
        auto [it, inserted] =
            out.emplace(t.fn(), static_cast<uint32_t>(t.args().size()));
        if (!inserted && it->second != t.args().size()) {
          return Status::Malformed(
              "function symbol " + FunctionName(t.fn()) +
              " used with arities " + std::to_string(it->second) + " and " +
              std::to_string(t.args().size()));
        }
      }
    }
  }
  return out;
}

Status SOTgd::Validate(const Schema& source, const Schema& target) const {
  if (rules.empty()) return Status::Malformed("plain SO-tgd has no rules");
  for (const SORule& r : rules) {
    if (r.premise.empty() || r.conclusion.empty()) {
      return Status::Malformed("SO rule with empty side: " + r.ToString());
    }
    std::vector<VarId> pv = r.PremiseVars();
    std::unordered_set<VarId> pset(pv.begin(), pv.end());
    for (const Atom& a : r.premise) {
      MAPINV_RETURN_NOT_OK(a.Validate(source));
      if (!a.AllVariables()) {
        return Status::Malformed("SO rule premise atom " + a.ToString() +
                                 " has a non-variable argument");
      }
    }
    for (const Atom& a : r.conclusion) {
      MAPINV_RETURN_NOT_OK(a.Validate(target));
      for (const Term& t : a.terms) {
        if (!t.IsPlain()) {
          return Status::Malformed("conclusion term " + t.ToString() +
                                   " is not plain (variable or f(vars))");
        }
        if (t.is_function() && t.args().empty()) {
          return Status::Malformed("0-ary function application " +
                                   t.ToString() + " is not a plain term");
        }
        std::vector<VarId> tv;
        t.CollectVars(&tv);
        for (VarId v : tv) {
          if (!pset.contains(v)) {
            return Status::Malformed("conclusion variable " + VarName(v) +
                                     " of rule '" + r.ToString() +
                                     "' does not occur in the premise");
          }
        }
      }
    }
  }
  return Functions().status();
}

std::string SOTgd::ToString() const {
  std::string out;
  for (const SORule& r : rules) {
    out += r.ToString();
    out += "\n";
  }
  return out;
}

std::string SOInvDisjunct::ToString() const {
  std::vector<VarId> exist = CollectDistinctVars(atoms);
  std::string out;
  if (!exist.empty()) {
    out += "EXISTS ";
    for (size_t i = 0; i < exist.size(); ++i) {
      if (i > 0) out += ",";
      out += VarName(exist[i]);
    }
    out += " . ";
  }
  out += AtomsToString(atoms);
  for (const TermEq& eq : equalities) out += ", " + eq.ToString("=");
  for (const TermEq& ne : inequalities) out += ", " + ne.ToString("!=");
  return out;
}

std::string SOInverseRule::ToString() const {
  std::string out = premise.ToString();
  for (VarId v : constant_vars) out += ", C(" + VarName(v) + ")";
  out += " -> ";
  for (size_t i = 0; i < disjuncts.size(); ++i) {
    if (i > 0) out += " | ";
    out += "[";
    out += disjuncts[i].ToString();
    out += "]";
  }
  return out;
}

std::string SOInverse::ToString() const {
  std::string out;
  for (const SOInverseRule& r : rules) {
    out += r.ToString();
    out += "\n";
  }
  return out;
}

}  // namespace mapinv
