#include "logic/atom.h"

#include <unordered_set>

namespace mapinv {

Status Atom::Validate(const Schema& schema) const {
  RelationId id = schema.Find(RelationText(relation));
  if (id == kInvalidRelation) {
    return Status::NotFound("atom uses unknown relation '" +
                            std::string(RelationText(relation)) + "'");
  }
  if (schema.arity(id) != terms.size()) {
    return Status::Malformed("atom " + ToString() + " has arity " +
                             std::to_string(terms.size()) + ", schema wants " +
                             std::to_string(schema.arity(id)));
  }
  return Status::OK();
}

std::string Atom::ToString() const {
  std::string out = std::string(RelationText(relation)) + "(";
  for (size_t i = 0; i < terms.size(); ++i) {
    if (i > 0) out += ",";
    out += terms[i].ToString();
  }
  out += ")";
  return out;
}

std::vector<VarId> CollectDistinctVars(const std::vector<Atom>& atoms) {
  std::vector<VarId> all;
  for (const Atom& a : atoms) a.CollectVars(&all);
  std::unordered_set<VarId> seen;
  std::vector<VarId> out;
  for (VarId v : all) {
    if (seen.insert(v).second) out.push_back(v);
  }
  return out;
}

std::string AtomsToString(const std::vector<Atom>& atoms) {
  std::string out;
  for (size_t i = 0; i < atoms.size(); ++i) {
    if (i > 0) out += ", ";
    out += atoms[i].ToString();
  }
  return out;
}

}  // namespace mapinv
