#include "logic/nested.h"

#include <unordered_map>
#include <unordered_set>

namespace mapinv {

namespace {

std::string Indent(int n) { return std::string(static_cast<size_t>(n), ' '); }

Status ValidateAtoms(const std::vector<Atom>& atoms, const Schema& schema,
                     const char* side) {
  for (const Atom& a : atoms) {
    MAPINV_RETURN_NOT_OK(a.Validate(schema));
    if (!a.AllVariables()) {
      return Status::Malformed(std::string(side) + " atom " + a.ToString() +
                               " has a non-variable argument");
    }
  }
  return Status::OK();
}

Status ValidateNode(const NestedRule& rule, const Schema& source,
                    const Schema& target, bool is_root) {
  if (is_root && rule.premise.empty()) {
    return Status::Malformed("nested root rule with empty premise");
  }
  if (rule.conclusion.empty() && rule.children.empty()) {
    return Status::Malformed(
        "nested rule with neither conclusion nor children");
  }
  MAPINV_RETURN_NOT_OK(ValidateAtoms(rule.premise, source, "premise"));
  MAPINV_RETURN_NOT_OK(ValidateAtoms(rule.conclusion, target, "conclusion"));
  for (const NestedRule& child : rule.children) {
    MAPINV_RETURN_NOT_OK(ValidateNode(child, source, target, /*is_root=*/false));
  }
  return Status::OK();
}

// Depth-first translation context.
struct TranslationContext {
  std::vector<Atom> premise;                    // accumulated source atoms
  std::vector<VarId> premise_vars;              // accumulated, in order
  std::unordered_map<VarId, Term> skolems;      // existential -> Skolem term
};

Status TranslateNode(const NestedRule& rule, TranslationContext context,
                     FreshFunctionGen* gen, SOTgd* out) {
  // Extend the premise.
  context.premise.insert(context.premise.end(), rule.premise.begin(),
                         rule.premise.end());
  {
    std::unordered_set<VarId> seen(context.premise_vars.begin(),
                                   context.premise_vars.end());
    for (VarId v : CollectDistinctVars(rule.premise)) {
      if (seen.insert(v).second) context.premise_vars.push_back(v);
    }
  }

  // Skolemise the existentials introduced by this node's conclusion: a
  // conclusion variable that is neither a premise variable of the path nor
  // an ancestor existential gets f(x̄) over the path's premise variables —
  // descendants inherit the same term (correlation).
  std::vector<Term> args;
  args.reserve(context.premise_vars.size());
  for (VarId v : context.premise_vars) args.push_back(Term::Var(v));
  std::unordered_set<VarId> premise_set(context.premise_vars.begin(),
                                        context.premise_vars.end());
  for (VarId v : CollectDistinctVars(rule.conclusion)) {
    if (premise_set.contains(v) || context.skolems.contains(v)) continue;
    context.skolems.emplace(v, Term::Fn(gen->Next(), args));
  }

  if (!rule.conclusion.empty()) {
    SORule so_rule;
    so_rule.premise = context.premise;
    so_rule.conclusion.reserve(rule.conclusion.size());
    for (const Atom& atom : rule.conclusion) {
      Atom translated;
      translated.relation = atom.relation;
      translated.terms.reserve(atom.terms.size());
      for (const Term& t : atom.terms) {
        auto it = context.skolems.find(t.var());
        translated.terms.push_back(it == context.skolems.end() ? t
                                                               : it->second);
      }
      so_rule.conclusion.push_back(std::move(translated));
    }
    out->rules.push_back(std::move(so_rule));
  }

  for (const NestedRule& child : rule.children) {
    MAPINV_RETURN_NOT_OK(TranslateNode(child, context, gen, out));
  }
  return Status::OK();
}

}  // namespace

std::string NestedRule::ToString(int indent) const {
  std::string out = Indent(indent) + AtomsToString(premise) + " -> " +
                    (conclusion.empty() ? std::string("[]")
                                        : AtomsToString(conclusion));
  out += "\n";
  for (const NestedRule& child : children) {
    out += child.ToString(indent + 2);
  }
  return out;
}

Status NestedMapping::Validate() const {
  if (!source || !target) {
    return Status::InvalidArgument("nested mapping has null schema");
  }
  if (roots.empty()) {
    return Status::Malformed("nested mapping has no rules");
  }
  for (const NestedRule& rule : roots) {
    MAPINV_RETURN_NOT_OK(ValidateNode(rule, *source, *target, /*is_root=*/true));
  }
  return Status::OK();
}

std::string NestedMapping::ToString() const {
  std::string out;
  for (const NestedRule& rule : roots) out += rule.ToString();
  return out;
}

Result<SOTgdMapping> NestedToPlainSOTgd(const NestedMapping& mapping) {
  MAPINV_RETURN_NOT_OK(mapping.Validate());
  SOTgdMapping out;
  out.source = mapping.source;
  out.target = mapping.target;
  FreshFunctionGen gen("nk");
  for (const NestedRule& rule : mapping.roots) {
    MAPINV_RETURN_NOT_OK(TranslateNode(rule, TranslationContext{}, &gen,
                                       &out.so));
  }
  MAPINV_RETURN_NOT_OK(out.Validate());
  return out;
}

}  // namespace mapinv
