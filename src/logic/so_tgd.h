/// \file so_tgd.h
/// \brief Plain second-order tgds and the PolySOInverse output language.
///
/// A *plain SO-tgd* (Section 5.1) is ∃f̄ [ ∀x̄₁(φ₁→ψ₁) ∧ ... ∧ ∀x̄ₙ(φₙ→ψₙ) ]
/// where each φᵢ is a conjunction of source atoms over variables and each ψᵢ
/// is a conjunction of target atoms over *plain terms* (a variable, or
/// f(x₁,...,x_k) with the xⱼ premise variables). We represent the whole
/// formula as an SOTgd holding its rules; the function quantifier prefix is
/// implicit (every function symbol occurring in a conclusion is quantified).
///
/// The output of PolySOInverse (Section 5.2) is an SO dependency whose rules
/// have the form
///     R(ū) ∧ C(u_i)... → ∨ⱼ ∃ȳⱼ ( ψⱼ(ȳⱼ) ∧ Q_e ∧ Q_s )
/// where Q_e / Q_s are conjunctions of equalities and inequalities between
/// terms built from the inverse function symbols f₁,...,f_k,f★ applied to the
/// premise variables ū. SOInverseRule captures exactly this shape.

#ifndef MAPINV_LOGIC_SO_TGD_H_
#define MAPINV_LOGIC_SO_TGD_H_

#include <map>
#include <string>
#include <vector>

#include "base/status.h"
#include "logic/atom.h"

namespace mapinv {

/// \brief One rule φ(x̄) → ψ of a plain SO-tgd.
struct SORule {
  /// Source atoms; all arguments must be variables.
  std::vector<Atom> premise;
  /// Target atoms; arguments must be plain terms whose variables occur in
  /// the premise.
  std::vector<Atom> conclusion;

  std::vector<VarId> PremiseVars() const { return CollectDistinctVars(premise); }

  std::string ToString() const;

  friend bool operator==(const SORule& a, const SORule& b) {
    return a.premise == b.premise && a.conclusion == b.conclusion;
  }
};

/// \brief A plain SO-tgd: a conjunction of rules with implicitly quantified
/// function symbols.
struct SOTgd {
  std::vector<SORule> rules;

  /// The function symbols occurring in the rules, with their arities.
  /// Fails if a symbol occurs with two different arities.
  Result<std::map<FunctionId, uint32_t>> Functions() const;

  /// Checks: premises over `source` with variable arguments, conclusions
  /// over `target` with plain terms over premise variables, consistent
  /// function arities, non-empty sides.
  Status Validate(const Schema& source, const Schema& target) const;

  /// One rule per line.
  std::string ToString() const;
};

/// \brief One existential disjunct ∃ȳ (ψ(ȳ) ∧ Q_e ∧ Q_s) of an inverse rule.
struct SOInvDisjunct {
  /// Source atoms over variables ȳ (the premise variables of the original
  /// rule, renamed apart by the caller when needed).
  std::vector<Atom> atoms;
  /// Q_e: equalities between plain terms over ū/ȳ and inverse functions.
  std::vector<TermEq> equalities;
  /// Q_s equalities (f★(u) = f₁(u)) are stored in `equalities`; this holds
  /// the Q_s inequalities (f★(u) ≠ g₁(u)).
  std::vector<TermEq> inequalities;

  std::string ToString() const;

  friend bool operator==(const SOInvDisjunct& a, const SOInvDisjunct& b) {
    return a.atoms == b.atoms && a.equalities == b.equalities &&
           a.inequalities == b.inequalities;
  }
};

/// \brief One rule prem_σ(ū) → γ_σ(ū) of the PolySOInverse output.
struct SOInverseRule {
  /// The single premise atom R(ū) over the original target schema.
  Atom premise;
  /// Premise variables carrying C(·) (positions whose original term was a
  /// plain variable).
  std::vector<VarId> constant_vars;
  /// The disjuncts of γ_σ; empty disjunction never occurs (a rule's own
  /// term tuple subsumes itself).
  std::vector<SOInvDisjunct> disjuncts;

  std::string ToString() const;
};

/// \brief The full PolySOInverse output: ∃f̄' ∧ Σ'.
struct SOInverse {
  std::vector<SOInverseRule> rules;

  std::string ToString() const;
};

}  // namespace mapinv

#endif  // MAPINV_LOGIC_SO_TGD_H_
