/// \file mapping.h
/// \brief Schema mappings: a source schema, a target schema, and a
/// specification in one of the dependency languages.
///
/// A mapping M from R₁ to R₂ is semantically a set of instance pairs (I, J)
/// (Section 2); syntactically we carry the defining dependencies. Each
/// concrete class states which language specifies it:
///
///  * TgdMapping       — a finite set of s-t tgds (the paper's main input).
///  * ReverseMapping   — target-to-source dependencies in the Section 4
///                       languages (C(·), ≠ in premises; disjunctions and
///                       equalities in conclusions until eliminated).
///  * SOTgdMapping     — a plain SO-tgd (Section 5.1).
///  * SOInverseMapping — the PolySOInverse output language (Section 5.2).

#ifndef MAPINV_LOGIC_MAPPING_H_
#define MAPINV_LOGIC_MAPPING_H_

#include <memory>
#include <string>
#include <vector>

#include "base/status.h"
#include "data/schema.h"
#include "logic/dependency.h"
#include "logic/so_tgd.h"

namespace mapinv {

/// \brief A mapping specified by source-to-target tgds.
struct TgdMapping {
  std::shared_ptr<const Schema> source;
  std::shared_ptr<const Schema> target;
  std::vector<Tgd> tgds;

  TgdMapping() = default;
  TgdMapping(Schema src, Schema tgt, std::vector<Tgd> deps)
      : source(std::make_shared<const Schema>(std::move(src))),
        target(std::make_shared<const Schema>(std::move(tgt))),
        tgds(std::move(deps)) {}

  Status Validate() const {
    if (!source || !target) {
      return Status::InvalidArgument("mapping has null schema");
    }
    for (const Tgd& t : tgds) MAPINV_RETURN_NOT_OK(t.Validate(*source, *target));
    return Status::OK();
  }

  std::string ToString() const { return TgdsToString(tgds); }
};

/// \brief A target-to-source mapping in the Section 4 inverse languages.
///
/// `source` is the premise-side schema (the original mapping's target) and
/// `target` is the conclusion-side schema (the original mapping's source):
/// a ReverseMapping is itself a mapping from its own source to its own
/// target, so composition and exchange read naturally.
struct ReverseMapping {
  std::shared_ptr<const Schema> source;
  std::shared_ptr<const Schema> target;
  std::vector<ReverseDependency> deps;

  ReverseMapping() = default;
  ReverseMapping(std::shared_ptr<const Schema> src,
                 std::shared_ptr<const Schema> tgt,
                 std::vector<ReverseDependency> ds)
      : source(std::move(src)), target(std::move(tgt)), deps(std::move(ds)) {}

  Status Validate() const {
    if (!source || !target) {
      return Status::InvalidArgument("mapping has null schema");
    }
    for (const ReverseDependency& d : deps) {
      MAPINV_RETURN_NOT_OK(d.Validate(*source, *target));
    }
    return Status::OK();
  }

  /// True if no dependency uses a disjunctive conclusion.
  bool IsDisjunctionFree() const {
    for (const ReverseDependency& d : deps) {
      if (d.disjuncts.size() > 1) return false;
    }
    return true;
  }

  /// True if no conclusion disjunct carries equalities.
  bool IsEqualityFree() const {
    for (const ReverseDependency& d : deps) {
      for (const ReverseDisjunct& dj : d.disjuncts) {
        if (!dj.equalities.empty()) return false;
      }
    }
    return true;
  }

  std::string ToString() const { return ReverseDepsToString(deps); }
};

/// \brief A mapping specified by a plain SO-tgd.
struct SOTgdMapping {
  std::shared_ptr<const Schema> source;
  std::shared_ptr<const Schema> target;
  SOTgd so;

  SOTgdMapping() = default;
  SOTgdMapping(std::shared_ptr<const Schema> src,
               std::shared_ptr<const Schema> tgt, SOTgd tgd)
      : source(std::move(src)), target(std::move(tgt)), so(std::move(tgd)) {}

  Status Validate() const {
    if (!source || !target) {
      return Status::InvalidArgument("mapping has null schema");
    }
    return so.Validate(*source, *target);
  }

  std::string ToString() const { return so.ToString(); }
};

/// \brief A target-to-source mapping in the PolySOInverse output language.
struct SOInverseMapping {
  std::shared_ptr<const Schema> source;  ///< original target schema
  std::shared_ptr<const Schema> target;  ///< original source schema
  SOInverse inverse;

  std::string ToString() const { return inverse.ToString(); }
};

}  // namespace mapinv

#endif  // MAPINV_LOGIC_MAPPING_H_
