/// \file nested.h
/// \brief Nested mappings [Fuxman et al., VLDB'06 — the paper's ref 15] and
/// their polynomial-time translation to plain SO-tgds (Section 5.1).
///
/// A nested mapping is a tree of rules. A child rule extends its parent's
/// premise (it may reuse parent variables — the correlation join) and may
/// reuse the parent's *existential* conclusion variables: the invented value
/// is shared between parent and child conclusions. This is exactly the
/// feature flat tgds cannot express (one invented department key used by
/// the department atom and by every employee atom of that department), and
/// the reason Clio emits nested mappings.
///
/// Translation (the paper's §5.1 claim "every nested mapping can be
/// translated in polynomial time into a plain SO-tgd"): walk the tree
/// accumulating premises; the first time an existential variable y appears
/// on the path, Skolemise it as f_y(x̄) over the premise variables
/// accumulated *up to that level* — so every descendant sees the same term,
/// which is precisely the correlation semantics. Each tree node with a
/// non-empty conclusion yields one plain SO-tgd rule.
///
/// The translated mapping is then invertible with PolySOInverse, which is
/// how "our algorithm can compute inverses for nested mappings" is realised
/// in this library.

#ifndef MAPINV_LOGIC_NESTED_H_
#define MAPINV_LOGIC_NESTED_H_

#include <memory>
#include <vector>

#include "base/status.h"
#include "data/schema.h"
#include "logic/mapping.h"

namespace mapinv {

/// \brief One node of a nested mapping.
struct NestedRule {
  /// Source atoms added at this level; may reuse ancestor variables.
  std::vector<Atom> premise;
  /// Target atoms emitted at this level; may use ancestor variables,
  /// ancestor existentials (shared invented values) and fresh existentials.
  std::vector<Atom> conclusion;
  /// Correlated sub-rules.
  std::vector<NestedRule> children;

  std::string ToString(int indent = 0) const;
};

/// \brief A nested mapping: a forest of nested rules between two schemas.
struct NestedMapping {
  std::shared_ptr<const Schema> source;
  std::shared_ptr<const Schema> target;
  std::vector<NestedRule> roots;

  NestedMapping() = default;
  NestedMapping(Schema src, Schema tgt, std::vector<NestedRule> rules)
      : source(std::make_shared<const Schema>(std::move(src))),
        target(std::make_shared<const Schema>(std::move(tgt))),
        roots(std::move(rules)) {}

  /// Structural validation: atoms resolve against the schemas with
  /// variable-only arguments; every root has a non-empty premise; every
  /// conclusion variable is reachable (an ancestor-or-self premise variable
  /// or an existential introduced on the path).
  Status Validate() const;

  std::string ToString() const;
};

/// \brief Translates a nested mapping into an equivalent plain SO-tgd
/// mapping (linear in the tree size; one rule per node with a conclusion).
Result<SOTgdMapping> NestedToPlainSOTgd(const NestedMapping& mapping);

}  // namespace mapinv

#endif  // MAPINV_LOGIC_NESTED_H_
