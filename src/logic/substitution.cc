#include "logic/substitution.h"

#include <deque>

namespace mapinv {

Term Substitution::Apply(const Term& t) const {
  switch (t.kind()) {
    case Term::Kind::kVariable: {
      auto it = map_.find(t.var());
      if (it == map_.end()) return t;
      // Triangular form: the binding may itself mention bound variables.
      return Apply(it->second);
    }
    case Term::Kind::kConstant:
      return t;
    case Term::Kind::kFunction: {
      std::vector<Term> args;
      args.reserve(t.args().size());
      for (const Term& a : t.args()) args.push_back(Apply(a));
      return Term::Fn(t.fn(), std::move(args));
    }
  }
  return t;
}

Atom Substitution::Apply(const Atom& a) const {
  Atom out;
  out.relation = a.relation;
  out.terms.reserve(a.terms.size());
  for (const Term& t : a.terms) out.terms.push_back(Apply(t));
  return out;
}

std::vector<Atom> Substitution::Apply(const std::vector<Atom>& atoms) const {
  std::vector<Atom> out;
  out.reserve(atoms.size());
  for (const Atom& a : atoms) out.push_back(Apply(a));
  return out;
}

std::string Substitution::ToString() const {
  std::string out = "{";
  bool first = true;
  for (const auto& [v, t] : map_) {
    if (!first) out += ", ";
    first = false;
    out += VarName(v) + " -> " + t.ToString();
  }
  out += "}";
  return out;
}

namespace {

// Resolves a term one level: follows variable bindings until an unbound
// variable or a non-variable term is reached.
Term Walk(const Substitution& s, Term t) {
  while (t.is_variable() && s.Has(t.var())) {
    t = s.RawBinding(t.var());
  }
  return t;
}

// Occurs check on the *resolved* structure of `t`.
bool Occurs(const Substitution& s, VarId v, const Term& t) {
  Term w = Walk(s, t);
  switch (w.kind()) {
    case Term::Kind::kVariable:
      return w.var() == v;
    case Term::Kind::kConstant:
      return false;
    case Term::Kind::kFunction:
      for (const Term& a : w.args()) {
        if (Occurs(s, v, a)) return true;
      }
      return false;
  }
  return false;
}

}  // namespace

Result<Substitution> Unify(const std::vector<std::pair<Term, Term>>& goals) {
  Substitution subst;
  std::deque<std::pair<Term, Term>> work(goals.begin(), goals.end());
  while (!work.empty()) {
    auto [lhs, rhs] = work.front();
    work.pop_front();
    Term a = Walk(subst, lhs);
    Term b = Walk(subst, rhs);
    if (a == b) continue;
    if (a.is_variable()) {
      if (Occurs(subst, a.var(), b)) {
        return Status::NotFound("occurs check failed: " + VarName(a.var()) +
                                " in " + b.ToString());
      }
      subst.Bind(a.var(), b);
      continue;
    }
    if (b.is_variable()) {
      work.emplace_back(b, a);
      continue;
    }
    if (a.is_constant() || b.is_constant()) {
      return Status::NotFound("constant clash: " + a.ToString() + " vs " +
                              b.ToString());
    }
    // Both function terms.
    if (a.fn() != b.fn() || a.args().size() != b.args().size()) {
      return Status::NotFound("function clash: " + a.ToString() + " vs " +
                              b.ToString());
    }
    for (size_t i = 0; i < a.args().size(); ++i) {
      work.emplace_back(a.args()[i], b.args()[i]);
    }
  }
  return subst;
}

Result<Substitution> UnifyAtoms(const Atom& a, const Atom& b) {
  if (a.relation != b.relation || a.terms.size() != b.terms.size()) {
    return Status::NotFound("atoms over different relations: " + a.ToString() +
                            " vs " + b.ToString());
  }
  std::vector<std::pair<Term, Term>> goals;
  goals.reserve(a.terms.size());
  for (size_t i = 0; i < a.terms.size(); ++i) {
    goals.emplace_back(a.terms[i], b.terms[i]);
  }
  return Unify(goals);
}

Substitution RenameApart(const std::vector<VarId>& vars, FreshVarGen* gen) {
  Substitution out;
  for (VarId v : vars) {
    if (!out.Has(v)) out.Bind(v, Term::Var(gen->Next()));
  }
  return out;
}

}  // namespace mapinv
