/// \file dependency.h
/// \brief Tuple-generating dependencies and the paper's inverse languages.
///
/// Three first-order dependency classes appear in the paper:
///
///  * Tgd — a source-to-target tgd  φ(x̄) → ∃ȳ ψ(x̄, ȳ)  (Section 2).
///  * ReverseDependency — the output language of the Section 4 pipeline:
///      ψ(x̄) ∧ C(x̄) [∧ x≠x' ...]  →  β₁(x̄) ∨ ... ∨ β_k(x̄)
///    where each β_i is a conjunctive query possibly carrying equalities
///    between frontier variables. MaximumRecovery emits equalities and
///    disjunctions; EliminateEqualities removes the equalities and adds the
///    premise inequalities; EliminateDisjunctions leaves a single disjunct.
///    A ReverseDependency with one equality-free disjunct is exactly a "tgd
///    with inequalities and predicate C in its premise" — the chaseable
///    language of Theorem 4.5.
///
/// Second-order dependencies (plain SO-tgds and the PolySOInverse output
/// language) live in so_tgd.h.

#ifndef MAPINV_LOGIC_DEPENDENCY_H_
#define MAPINV_LOGIC_DEPENDENCY_H_

#include <string>
#include <vector>

#include "base/status.h"
#include "logic/cq.h"

namespace mapinv {

/// \brief A source-to-target tuple-generating dependency.
struct Tgd {
  /// Conjunction of relational atoms over the source schema; all arguments
  /// must be variables.
  std::vector<Atom> premise;
  /// Conjunction of relational atoms over the target schema; variables not
  /// occurring in the premise are existentially quantified.
  std::vector<Atom> conclusion;

  /// Premise variables, in order of first occurrence.
  std::vector<VarId> PremiseVars() const { return CollectDistinctVars(premise); }

  /// Frontier: premise variables that also occur in the conclusion — the x̄
  /// of φ(x̄) → ψ(x̄) in the paper's Section 4 notation.
  std::vector<VarId> FrontierVars() const;

  /// Conclusion variables that do not occur in the premise (the ∃ȳ).
  std::vector<VarId> ExistentialVars() const;

  /// Checks both sides against their schemas: known relations, matching
  /// arities, variable-only arguments, non-empty premise and conclusion.
  Status Validate(const Schema& source, const Schema& target) const;

  /// "R(x,y), S(y,z) -> EXISTS u . T(x,z,u)".
  std::string ToString() const;

  friend bool operator==(const Tgd& a, const Tgd& b) {
    return a.premise == b.premise && a.conclusion == b.conclusion;
  }
};

/// \brief One conclusion disjunct of a ReverseDependency.
using ReverseDisjunct = CqDisjunct;

/// \brief A reverse dependency (target-to-source), Section 4 languages.
struct ReverseDependency {
  /// Conjunction of relational atoms over the (original) target schema.
  std::vector<Atom> premise;
  /// Variables constrained by the constant predicate C(·). In the paper this
  /// is always the frontier x̄ of the originating tgd.
  std::vector<VarId> constant_vars;
  /// Premise inequalities between frontier variables (EliminateEqualities
  /// output; empty for raw MaximumRecovery output).
  std::vector<VarPair> inequalities;
  /// Conclusion disjuncts over the (original) source schema. Variables not
  /// occurring in the premise are existentially quantified per disjunct;
  /// equalities relate frontier variables only.
  std::vector<ReverseDisjunct> disjuncts;

  std::vector<VarId> PremiseVars() const { return CollectDistinctVars(premise); }

  /// Checks the dependency: premise over `premise_schema` (the original
  /// target), disjuncts over `conclusion_schema` (the original source),
  /// variable-only arguments, constant/inequality variables drawn from the
  /// premise, equality endpoints drawn from the premise.
  Status Validate(const Schema& premise_schema,
                  const Schema& conclusion_schema) const;

  /// "T(x,y), C(x), C(y), x != y -> R(x,u) | S(x,y), x = y".
  std::string ToString() const;

  friend bool operator==(const ReverseDependency& a,
                         const ReverseDependency& b) {
    return a.premise == b.premise && a.constant_vars == b.constant_vars &&
           a.inequalities == b.inequalities && a.disjuncts == b.disjuncts;
  }
};

/// Renders a set of tgds, one per line.
std::string TgdsToString(const std::vector<Tgd>& tgds);

/// Renders a set of reverse dependencies, one per line.
std::string ReverseDepsToString(const std::vector<ReverseDependency>& deps);

}  // namespace mapinv

#endif  // MAPINV_LOGIC_DEPENDENCY_H_
