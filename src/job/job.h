/// \file job.h
/// \brief Durable, crash-safe jobs: checkpointed world enumeration that a
/// SIGKILLed process can resume to the byte-identical world set.
///
/// A *job* is a long-running world enumeration (ChaseReverseWorlds,
/// ChaseSOInverseWorlds, and the round trips built on them) whose frontier is
/// periodically committed to a *job directory* — a plain directory the caller
/// names via ExecutionOptions::checkpoint_dir. Each commit writes one
/// *generation*: a snapshot file per live world plus a manifest recording the
/// enumeration cursor (dependency index, trigger index, facts created, and
/// the fresh-null watermark). Every file lands via write-temp + fsync +
/// rename, and the directory itself is fsynced after the manifest rename, so
/// at any kill instant the directory holds only whole generations: either
/// the new manifest is durably in place (the commit happened) or it is not
/// (the previous generation still governs). Torn world files from an
/// interrupted commit are unreferenced garbage, never read.
///
/// The manifest is a checksummed binary record (magic "MAPINVJB"). Its
/// loader, JobManifestFromBytes, is a bounds-checked cursor in the style of
/// the snapshot loader (data/snapshot.cc): every truncation length and every
/// byte flip is rejected as a clean kMalformed error, never undefined
/// behaviour — the whole image is covered by a trailing FNV-1a checksum.
/// Resume picks the newest generation whose manifest *and* world files all
/// load; a corrupt newest generation falls back to the previous good one
/// (commits keep one prior generation for exactly this reason).
///
/// A manifest also records a *fingerprint* of the job's inputs (kind,
/// mapping rendering, input rendering, oblivious flag). Resuming against a
/// directory whose checkpoint was written by a different job is refused —
/// the cursor would be meaningless against different inputs.
///
/// Crash coverage: the commit path carries four FailPoint sites
/// (job/commit_begin, job/world_snapshot, job/manifest_write,
/// job/commit_end); tests arm FailPointSpec::Mode::kAbortProcess at each to
/// SIGKILL a forked child at every checkpoint boundary and prove the resumed
/// run reproduces the uninterrupted world set byte for byte. See
/// docs/JOBS.md.

#ifndef MAPINV_JOB_JOB_H_
#define MAPINV_JOB_JOB_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "base/status.h"

namespace mapinv {

struct ExecStats;

/// Triggers processed between checkpoint commits when
/// ExecutionOptions::checkpoint_every is 0.
constexpr size_t kDefaultCheckpointEvery = 64;

/// \brief Which enumeration a job directory belongs to. Serialized in the
/// manifest; a resume with the wrong kind is refused.
enum class JobKind : uint32_t {
  kReverseWorlds = 0,   ///< ChaseReverseWorlds (disjunctive reverse chase)
  kSOInverseWorlds = 1, ///< ChaseSOInverseWorlds (symbolic SO-inverse worlds)
};

/// \brief One checkpoint record: the enumeration cursor plus the names of
/// the world snapshot files that make up the frontier. The manifest is a
/// pure value — JobManifestToBytes(JobManifestFromBytes(b)) == b for every
/// valid image, which is the fuzz oracle (tests/fuzz/parser_fuzz.cc, 'J').
struct JobManifest {
  /// Enumeration kind (see JobKind; stored wide for forward compatibility).
  uint32_t kind = 0;
  /// FNV-1a over the job inputs (JobFingerprint); a resume whose inputs
  /// hash differently is refused as kInvalidArgument.
  uint64_t fingerprint = 0;
  /// Commit sequence number; file names embed it (manifest-<G>, w<G>-<i>).
  uint64_t generation = 0;
  /// True once the enumeration has finished: the world files are the final
  /// answer and the cursor fields are the end-of-run values.
  bool complete = false;
  /// Index of the dependency (rule) the enumeration was processing.
  uint32_t dep_index = 0;
  /// Index of the next unprocessed trigger within that dependency.
  uint64_t trigger_index = 0;
  /// Facts created so far (the max_new_facts accounting carries across the
  /// kill).
  uint64_t created = 0;
  /// SymbolContext::NullWatermark() at commit time; restored via
  /// BumpNullPast so resumed fresh nulls continue the killed run's sequence.
  uint64_t null_watermark = 0;
  /// Snapshot file names (relative to the job directory), one per world, in
  /// frontier order.
  std::vector<std::string> world_files;

  bool operator==(const JobManifest&) const = default;
};

/// \brief Serializes a manifest to its durable byte image (including the
/// trailing checksum).
std::string JobManifestToBytes(const JobManifest& manifest);

/// \brief Parses a manifest image. Fully bounds-checked: any truncation,
/// trailing garbage, bad magic/version/kind, unreasonable counts, invalid
/// world-file name or checksum mismatch is a clean kMalformed error.
Result<JobManifest> JobManifestFromBytes(const void* data, size_t size);

/// \brief The job-input fingerprint stored in manifests: FNV-1a over the
/// kind, the mapping rendering, the input-instance rendering and the
/// oblivious flag — the inputs that determine the enumeration's trajectory.
uint64_t JobFingerprint(JobKind kind, std::string_view mapping_text,
                        std::string_view input_text, bool oblivious);

/// \brief A checkpoint restored from disk: the governing manifest plus the
/// raw snapshot bytes of every world file it names, in manifest order.
struct JobResumeState {
  JobManifest manifest;
  std::vector<std::string> world_images;
};

/// \brief Owns one job directory: validates/creates it on open, loads the
/// newest good checkpoint when resuming, and commits new generations
/// durably. Not thread-safe; one enumeration drives one checkpointer.
class JobCheckpointer {
 public:
  /// Opens `dir` for a job with the given identity.
  ///
  /// Fresh start (`resume` false): the directory is created if absent; if it
  /// already holds any manifest, the open is refused (kInvalidArgument) so
  /// an existing job is never silently clobbered.
  ///
  /// Resume (`resume` true): the newest generation whose manifest and world
  /// files all load becomes resumed(); a corrupt newest generation falls
  /// back to the previous good one. An empty directory starts fresh
  /// (resumed() is nullopt). A directory with manifests but no loadable
  /// checkpoint is kMalformed; a loadable checkpoint whose fingerprint or
  /// kind differs is kInvalidArgument.
  static Result<JobCheckpointer> Open(const std::string& dir, JobKind kind,
                                      uint64_t fingerprint, bool resume);

  /// The checkpoint restored by Open, if any.
  const std::optional<JobResumeState>& resumed() const { return resumed_; }

  /// Durably commits the next generation: writes each world image to
  /// w<G>-<i>.snap, then the manifest (cursor fields from `manifest`;
  /// generation and world_files are filled in here), each via
  /// write-temp-fsync-rename plus a directory fsync, then deletes
  /// generations older than G-1. On success bumps stats->jobs_checkpointed
  /// and stats->checkpoint_bytes (stats may be null).
  Status Commit(JobManifest manifest,
                const std::vector<std::string>& world_images,
                ExecStats* stats);

 private:
  JobCheckpointer() = default;

  std::string dir_;
  JobKind kind_ = JobKind::kReverseWorlds;
  uint64_t fingerprint_ = 0;
  uint64_t next_generation_ = 1;
  std::optional<JobResumeState> resumed_;
};

}  // namespace mapinv

#endif  // MAPINV_JOB_JOB_H_
