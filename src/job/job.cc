#include "job/job.h"

#include <dirent.h>
#include <errno.h>
#include <fcntl.h>
#include <string.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "engine/execution_options.h"
#include "engine/failpoint.h"

namespace mapinv {

namespace {

// Crash-schedule sites of the commit protocol: a kAbortProcess arming at any
// of these kills the process at a distinct checkpoint boundary (before any
// write, between world snapshots, before the manifest rename, after the
// commit is durable). See docs/JOBS.md.
FailPoint fp_commit_begin("job/commit_begin");
FailPoint fp_world_snapshot("job/world_snapshot");
FailPoint fp_manifest_write("job/manifest_write");
FailPoint fp_commit_end("job/commit_end");

constexpr char kMagic[8] = {'M', 'A', 'P', 'I', 'N', 'V', 'J', 'B'};
constexpr uint32_t kVersion = 1;
// A frontier cannot outgrow ResourceLimits::max_worlds (4096 default), and a
// manifest naming millions of files is certainly corrupt: bound the count so
// the loader never trusts an attacker-controlled length into an allocation.
constexpr uint64_t kMaxWorldFiles = 1u << 20;

void AppendU32(std::string& buf, uint32_t v) {
  buf.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void AppendU64(std::string& buf, uint64_t v) {
  buf.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

Status Malformed(const std::string& what) {
  return Status::Malformed("job manifest: " + what);
}

// Bounds-checked cursor over the manifest image, mirroring the snapshot
// loader's Reader (data/snapshot.cc): every read fails with kMalformed
// instead of walking off the buffer.
class Reader {
 public:
  Reader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  Result<uint32_t> U32() {
    uint32_t v;
    MAPINV_RETURN_NOT_OK(Raw(&v, sizeof(v)));
    return v;
  }

  Result<uint64_t> U64() {
    uint64_t v;
    MAPINV_RETURN_NOT_OK(Raw(&v, sizeof(v)));
    return v;
  }

  Result<std::string_view> Bytes(size_t len) {
    if (len > size_ - pos_) return Malformed("truncated inside a field");
    std::string_view view(reinterpret_cast<const char*>(data_ + pos_), len);
    pos_ += len;
    return view;
  }

  size_t pos() const { return pos_; }

 private:
  Status Raw(void* out, size_t len) {
    if (len > size_ - pos_) return Malformed("truncated inside a field");
    std::memcpy(out, data_ + pos_, len);
    pos_ += len;
    return Status::OK();
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

uint64_t Fnv1a(uint64_t h, const void* data, size_t len) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

constexpr uint64_t kFnvOffset = 14695981039346656037ull;

// A world-file name a manifest may legally carry: non-empty, flat (no path
// separators, no "." / ".."), so a corrupt or hostile manifest can never
// direct reads outside the job directory.
bool ValidWorldFileName(std::string_view name) {
  if (name.empty() || name == "." || name == "..") return false;
  return name.find('/') == std::string_view::npos &&
         name.find('\0') == std::string_view::npos;
}

// write-temp + fsync + rename + fsync(dir): after this returns OK the file
// is durably in place under its final name; a kill at any earlier instant
// leaves at most a stray "*.tmp" that no manifest references. This is
// stronger than the snapshot layer's WriteFileAtomic, which renames without
// syncing — atomicity is enough there, durability matters here.
Status WriteFileDurable(const std::string& dir, const std::string& name,
                        const std::string& bytes) {
  const std::string path = dir + "/" + name;
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::Internal("job: cannot create " + tmp + ": " +
                            std::strerror(errno));
  }
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      Status s = Status::Internal("job: write to " + tmp + " failed: " +
                                  std::strerror(errno));
      ::close(fd);
      ::unlink(tmp.c_str());
      return s;
    }
    off += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    Status s = Status::Internal("job: fsync of " + tmp + " failed: " +
                                std::strerror(errno));
    ::close(fd);
    ::unlink(tmp.c_str());
    return s;
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return Status::Internal("job: close of " + tmp + " failed: " +
                            std::strerror(errno));
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    Status s = Status::Internal("job: rename to " + path + " failed: " +
                                std::strerror(errno));
    ::unlink(tmp.c_str());
    return s;
  }
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd < 0) {
    return Status::Internal("job: cannot open directory " + dir + ": " +
                            std::strerror(errno));
  }
  if (::fsync(dfd) != 0) {
    Status s = Status::Internal("job: fsync of directory " + dir +
                                " failed: " + std::strerror(errno));
    ::close(dfd);
    return s;
  }
  ::close(dfd);
  return Status::OK();
}

Result<std::string> ReadFileFully(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::NotFound("job: cannot open " + path + ": " +
                            std::strerror(errno));
  }
  std::string bytes;
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string err = ::strerror(errno);
      ::close(fd);
      return Status::Internal("job: read of " + path + " failed: " + err);
    }
    if (n == 0) break;
    bytes.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return bytes;
}

std::string ManifestName(uint64_t generation) {
  return "manifest-" + std::to_string(generation);
}

std::string WorldFileName(uint64_t generation, size_t index) {
  return "w" + std::to_string(generation) + "-" + std::to_string(index) +
         ".snap";
}

// The generation of a "manifest-<G>" file name, or nullopt for any other
// name (including temp files and world snapshots).
std::optional<uint64_t> ManifestGeneration(const std::string& name) {
  constexpr std::string_view kPrefix = "manifest-";
  if (name.size() <= kPrefix.size() || name.compare(0, kPrefix.size(), kPrefix) != 0) {
    return std::nullopt;
  }
  uint64_t g = 0;
  for (size_t i = kPrefix.size(); i < name.size(); ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') return std::nullopt;
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (g > (UINT64_MAX - digit) / 10) return std::nullopt;
    g = g * 10 + digit;
  }
  return g;
}

// The generation a "w<G>-<i>.snap" name belongs to, for garbage collection.
std::optional<uint64_t> WorldFileGeneration(const std::string& name) {
  constexpr std::string_view kSuffix = ".snap";
  if (name.size() <= 1 + kSuffix.size() || name[0] != 'w') return std::nullopt;
  if (name.compare(name.size() - kSuffix.size(), kSuffix.size(), kSuffix) !=
      0) {
    return std::nullopt;
  }
  uint64_t g = 0;
  size_t i = 1;
  bool any = false;
  for (; i < name.size() && name[i] >= '0' && name[i] <= '9'; ++i) {
    const uint64_t digit = static_cast<uint64_t>(name[i] - '0');
    if (g > (UINT64_MAX - digit) / 10) return std::nullopt;
    g = g * 10 + digit;
    any = true;
  }
  if (!any || i >= name.size() || name[i] != '-') return std::nullopt;
  return g;
}

Result<std::vector<std::string>> ListDirectory(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    return Status::Internal("job: cannot list directory " + dir + ": " +
                            std::strerror(errno));
  }
  std::vector<std::string> names;
  for (;;) {
    errno = 0;
    const struct dirent* entry = ::readdir(d);
    if (entry == nullptr) break;
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    names.push_back(name);
  }
  ::closedir(d);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace

std::string JobManifestToBytes(const JobManifest& manifest) {
  std::string buf;
  buf.append(kMagic, sizeof(kMagic));
  AppendU32(buf, kVersion);
  AppendU32(buf, manifest.kind);
  AppendU64(buf, manifest.fingerprint);
  AppendU64(buf, manifest.generation);
  AppendU32(buf, manifest.complete ? 1 : 0);
  AppendU32(buf, manifest.dep_index);
  AppendU64(buf, manifest.trigger_index);
  AppendU64(buf, manifest.created);
  AppendU64(buf, manifest.null_watermark);
  AppendU32(buf, static_cast<uint32_t>(manifest.world_files.size()));
  for (const std::string& name : manifest.world_files) {
    AppendU32(buf, static_cast<uint32_t>(name.size()));
    buf.append(name);
  }
  AppendU64(buf, Fnv1a(kFnvOffset, buf.data(), buf.size()));
  return buf;
}

Result<JobManifest> JobManifestFromBytes(const void* data, size_t size) {
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  if (size < sizeof(kMagic) + sizeof(uint64_t)) {
    return Malformed("image shorter than magic plus checksum");
  }
  // Checksum first: a single flipped bit anywhere in the image — header,
  // cursor, name bytes — is rejected before any field is interpreted.
  uint64_t stored_sum;
  std::memcpy(&stored_sum, bytes + size - sizeof(uint64_t), sizeof(uint64_t));
  if (Fnv1a(kFnvOffset, bytes, size - sizeof(uint64_t)) != stored_sum) {
    return Malformed("checksum mismatch (torn or corrupted write)");
  }
  Reader reader(bytes, size - sizeof(uint64_t));
  MAPINV_ASSIGN_OR_RETURN(std::string_view magic, reader.Bytes(sizeof(kMagic)));
  if (std::memcmp(magic.data(), kMagic, sizeof(kMagic)) != 0) {
    return Malformed("bad magic");
  }
  MAPINV_ASSIGN_OR_RETURN(const uint32_t version, reader.U32());
  if (version != kVersion) {
    return Malformed("unsupported version " + std::to_string(version));
  }
  JobManifest manifest;
  MAPINV_ASSIGN_OR_RETURN(manifest.kind, reader.U32());
  if (manifest.kind > static_cast<uint32_t>(JobKind::kSOInverseWorlds)) {
    return Malformed("unknown job kind " + std::to_string(manifest.kind));
  }
  MAPINV_ASSIGN_OR_RETURN(manifest.fingerprint, reader.U64());
  MAPINV_ASSIGN_OR_RETURN(manifest.generation, reader.U64());
  MAPINV_ASSIGN_OR_RETURN(const uint32_t complete, reader.U32());
  if (complete > 1) return Malformed("complete flag is not 0/1");
  manifest.complete = complete == 1;
  MAPINV_ASSIGN_OR_RETURN(manifest.dep_index, reader.U32());
  MAPINV_ASSIGN_OR_RETURN(manifest.trigger_index, reader.U64());
  MAPINV_ASSIGN_OR_RETURN(manifest.created, reader.U64());
  MAPINV_ASSIGN_OR_RETURN(manifest.null_watermark, reader.U64());
  MAPINV_ASSIGN_OR_RETURN(const uint32_t num_worlds, reader.U32());
  if (num_worlds > kMaxWorldFiles) {
    return Malformed("world file count " + std::to_string(num_worlds) +
                     " exceeds the sanity bound");
  }
  manifest.world_files.reserve(num_worlds);
  for (uint32_t i = 0; i < num_worlds; ++i) {
    MAPINV_ASSIGN_OR_RETURN(const uint32_t len, reader.U32());
    MAPINV_ASSIGN_OR_RETURN(std::string_view name, reader.Bytes(len));
    if (!ValidWorldFileName(name)) {
      return Malformed("world file name is empty or not flat");
    }
    manifest.world_files.emplace_back(name);
  }
  if (reader.pos() != size - sizeof(uint64_t)) {
    return Malformed("trailing bytes after the world file list");
  }
  return manifest;
}

uint64_t JobFingerprint(JobKind kind, std::string_view mapping_text,
                        std::string_view input_text, bool oblivious) {
  uint64_t h = kFnvOffset;
  const uint32_t k = static_cast<uint32_t>(kind);
  h = Fnv1a(h, &k, sizeof(k));
  // Lengths delimit the fields so ("ab","c") never collides with ("a","bc").
  const uint64_t mlen = mapping_text.size();
  h = Fnv1a(h, &mlen, sizeof(mlen));
  h = Fnv1a(h, mapping_text.data(), mapping_text.size());
  const uint64_t ilen = input_text.size();
  h = Fnv1a(h, &ilen, sizeof(ilen));
  h = Fnv1a(h, input_text.data(), input_text.size());
  const uint8_t obl = oblivious ? 1 : 0;
  h = Fnv1a(h, &obl, sizeof(obl));
  return h;
}

Result<JobCheckpointer> JobCheckpointer::Open(const std::string& dir,
                                              JobKind kind,
                                              uint64_t fingerprint,
                                              bool resume) {
  if (dir.empty()) {
    return Status::InvalidArgument("job: checkpoint directory is empty");
  }
  if (::mkdir(dir.c_str(), 0777) != 0 && errno != EEXIST) {
    return Status::InvalidArgument("job: cannot create checkpoint directory " +
                                   dir + ": " + std::strerror(errno));
  }
  MAPINV_ASSIGN_OR_RETURN(const std::vector<std::string> names,
                          ListDirectory(dir));
  std::vector<uint64_t> generations;
  for (const std::string& name : names) {
    if (const std::optional<uint64_t> g = ManifestGeneration(name);
        g.has_value()) {
      generations.push_back(*g);
    }
  }
  std::sort(generations.begin(), generations.end(),
            [](uint64_t a, uint64_t b) { return a > b; });

  JobCheckpointer job;
  job.dir_ = dir;
  job.kind_ = kind;
  job.fingerprint_ = fingerprint;

  if (!resume) {
    if (!generations.empty()) {
      return Status::InvalidArgument(
          "job: checkpoint directory " + dir +
          " already holds a job (manifest-" +
          std::to_string(generations.front()) +
          "); pass resume to continue it or point at a fresh directory");
    }
    return job;
  }

  // Newest loadable generation wins; a corrupt newest generation (torn
  // manifest, missing or unreadable world file) falls back to the previous
  // good one. Identity mismatches are not corruption — they mean the caller
  // is resuming the wrong job, and are refused loudly instead of skipped.
  for (const uint64_t generation : generations) {
    Result<std::string> image = ReadFileFully(dir + "/" + ManifestName(generation));
    if (!image.ok()) continue;
    Result<JobManifest> manifest =
        JobManifestFromBytes(image->data(), image->size());
    if (!manifest.ok()) continue;
    if (manifest->kind != static_cast<uint32_t>(kind)) {
      return Status::InvalidArgument(
          "job: checkpoint in " + dir +
          " belongs to a different enumeration kind");
    }
    if (manifest->fingerprint != fingerprint) {
      return Status::InvalidArgument(
          "job: checkpoint in " + dir +
          " was written for different inputs (fingerprint mismatch)");
    }
    JobResumeState state;
    state.world_images.reserve(manifest->world_files.size());
    bool worlds_ok = true;
    for (const std::string& name : manifest->world_files) {
      Result<std::string> world = ReadFileFully(dir + "/" + name);
      if (!world.ok()) {
        worlds_ok = false;
        break;
      }
      state.world_images.push_back(std::move(*world));
    }
    if (!worlds_ok) continue;
    state.manifest = std::move(*manifest);
    job.next_generation_ = generation + 1;
    job.resumed_ = std::move(state);
    return job;
  }
  if (!generations.empty()) {
    return Status::Malformed(
        "job: checkpoint directory " + dir +
        " holds manifests but no loadable checkpoint (all generations are "
        "corrupt or torn)");
  }
  return job;  // empty directory: fresh start
}

Status JobCheckpointer::Commit(JobManifest manifest,
                               const std::vector<std::string>& world_images,
                               ExecStats* stats) {
  MAPINV_FAILPOINT(fp_commit_begin);
  const uint64_t generation = next_generation_;
  manifest.kind = static_cast<uint32_t>(kind_);
  manifest.fingerprint = fingerprint_;
  manifest.generation = generation;
  manifest.world_files.clear();
  manifest.world_files.reserve(world_images.size());
  uint64_t bytes_written = 0;
  for (size_t i = 0; i < world_images.size(); ++i) {
    MAPINV_FAILPOINT(fp_world_snapshot);
    const std::string name = WorldFileName(generation, i);
    MAPINV_RETURN_NOT_OK(WriteFileDurable(dir_, name, world_images[i]));
    bytes_written += world_images[i].size();
    manifest.world_files.push_back(name);
  }
  MAPINV_FAILPOINT(fp_manifest_write);
  const std::string image = JobManifestToBytes(manifest);
  // The manifest rename is the commit point: until it lands, the previous
  // generation governs and this generation's world files are unreferenced.
  MAPINV_RETURN_NOT_OK(WriteFileDurable(dir_, ManifestName(generation), image));
  bytes_written += image.size();
  next_generation_ = generation + 1;
  // Keep generation-1 as the fallback checkpoint; everything older (and any
  // stray temp file) is garbage. GC failures are ignored: leftover files
  // cost disk, not correctness.
  if (Result<std::vector<std::string>> names = ListDirectory(dir_);
      names.ok()) {
    for (const std::string& name : *names) {
      std::optional<uint64_t> g = ManifestGeneration(name);
      if (!g.has_value()) g = WorldFileGeneration(name);
      if (g.has_value() && *g + 1 < generation) {
        ::unlink((dir_ + "/" + name).c_str());
      }
    }
  }
  if (stats != nullptr) {
    stats->jobs_checkpointed.fetch_add(1, std::memory_order_relaxed);
    stats->checkpoint_bytes.fetch_add(bytes_written,
                                      std::memory_order_relaxed);
  }
  MAPINV_FAILPOINT(fp_commit_end);
  return Status::OK();
}

}  // namespace mapinv
