/// \file server.h
/// \brief mapinv_serve: a multi-tenant inversion service over unix/TCP
/// sockets.
///
/// Architecture (one process, no external dependencies):
///
///   * an acceptor thread polls the listening sockets (unix and/or TCP) and
///     a self-pipe; each accepted connection gets its own thread running
///     the frame loop (read → dispatch → write). Concurrency across
///     requests comes from connections; parallelism *inside* a request
///     comes from the shared ThreadPool, exactly as in the library;
///   * a watchdog thread polls executing connections for POLLRDHUP: a
///     client that disconnects mid-request gets its CancelToken fired, so
///     abandoned work unwinds at the next poll point instead of running to
///     completion (docs/SERVING.md "disconnect semantics");
///   * admission control: at most `max_inflight` requests execute at once;
///     excess requests are answered immediately with resource-exhausted so
///     clients can back off (brownout is per-request via
///     options.on_exhausted = "partial");
///   * sessions (serve/session.h) hold mapping + instance snapshots;
///     compute requests naming a session run against shared immutable
///     state, so cross-session corruption is structurally impossible.
///
/// Protocol verbs on top of the engine commands: session.open,
/// session.close, session.list, instance.put, instance.append, instance.save,
/// instance.load, job.start, job.status, job.cancel, job.resume, metrics,
/// server.stop (the last only when ServerConfig::allow_stop). Responses are
/// canonical EngineResponse documents (engine/request.h). instance.append
/// and the exchange-delta engine command drive the session's incrementally
/// maintained solutions (chase/maintained.h).
///
/// Jobs (docs/JOBS.md): job.start runs an engine command (the "run" field)
/// on a dedicated background thread with its own CancelToken, so the work
/// survives the starting connection's disconnect — the watchdog only cancels
/// work executing *on* a connection. Pointing the job's options at a
/// checkpoint directory makes it durable across a server kill: job.resume
/// re-submits the same request with options.resume forced on, and the
/// engine's checkpointer picks up from the newest good generation. Idle
/// sessions are evicted by the watchdog when ServerConfig::session_ttl_ms is
/// set (sessions_evicted metric).

#ifndef MAPINV_SERVE_SERVER_H_
#define MAPINV_SERVE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "base/json.h"
#include "base/status.h"
#include "engine/execution_options.h"
#include "serve/protocol.h"
#include "serve/session.h"

namespace mapinv {

class ThreadPool;

/// \brief Server configuration; every limit has a safe default.
struct ServerConfig {
  /// Unix-domain socket path; empty disables the unix listener.
  std::string unix_path;
  /// TCP port; -1 disables the TCP listener, 0 binds an ephemeral port
  /// (read it back with Server::tcp_port()).
  int tcp_port = -1;
  std::string tcp_host = "127.0.0.1";
  /// Per-request parallelism budget (ExecutionOptions::threads). Requests
  /// may lower it, never raise it. 1 = sequential (deterministic default).
  int threads = 1;
  /// Workers in the shared pool; 0 sizes it to `threads - 1`.
  int pool_workers = 0;
  int max_connections = 128;
  /// Admission control: requests executing at once; 0 = max_connections.
  int max_inflight = 0;
  uint32_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Default per-request limits and deadline (requests may override).
  ResourceLimits limits;
  OnExhausted on_exhausted = OnExhausted::kFail;
  size_t max_sessions = 256;
  /// Honor the server.stop request (handy for tests/CI; disable for
  /// long-lived daemons that should only stop on signals).
  bool allow_stop = true;
  /// Idle-session TTL in milliseconds; 0 disables eviction. The watchdog
  /// sweeps roughly once a second and closes every session whose last
  /// traffic is older than this.
  int64_t session_ttl_ms = 0;
  /// Background jobs held at once (running or finished-but-unreaped);
  /// job.start past the cap is refused with resource-exhausted.
  size_t max_jobs = 64;
};

/// \brief Server-wide counters (beyond the per-session metrics).
struct ServerMetrics {
  std::atomic<uint64_t> connections_accepted{0};
  std::atomic<uint64_t> connections_rejected{0};
  std::atomic<uint64_t> frames_read{0};
  std::atomic<uint64_t> malformed_frames{0};
  std::atomic<uint64_t> requests{0};
  std::atomic<uint64_t> requests_ok{0};
  std::atomic<uint64_t> requests_error{0};
  std::atomic<uint64_t> requests_rejected{0};  // admission control
  std::atomic<uint64_t> disconnect_cancels{0};
  std::atomic<uint64_t> sessions_evicted{0};  // idle-TTL sweeps
  std::atomic<uint64_t> jobs_started{0};      // job.start + job.resume
  std::atomic<uint64_t> jobs_finished{0};     // background jobs completed
};

/// \brief The daemon. Start() binds and spawns the threads; Stop() (or a
/// server.stop request) drains: stops accepting, cancels in-flight work,
/// joins every thread. One Server per process-lifetime-segment; not
/// restartable.
class Server {
 public:
  explicit Server(ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the listeners and spawns acceptor + watchdog. kInvalidArgument
  /// if no listener is configured; kInternal on socket failures.
  Status Start();

  /// Requests shutdown (idempotent, safe from any thread — including a
  /// connection thread handling server.stop).
  void RequestStop();

  /// Blocks until the server has fully stopped and every thread is joined.
  void Wait();

  /// The bound TCP port (resolved when tcp_port = 0 was requested); -1 if
  /// no TCP listener.
  int tcp_port() const { return tcp_port_; }
  const std::string& unix_path() const { return config_.unix_path; }

  const ServerMetrics& metrics() const { return metrics_; }
  SessionManager& sessions() { return sessions_; }

  /// The full metrics document served to `metrics` requests.
  Json MetricsJson() const;

 private:
  struct Connection {
    int fd = -1;
    std::thread thread;
    CancelToken cancel;
    /// True while a request is executing on this connection — the watchdog
    /// only watches executing connections (a poll on an idle connection
    /// would see POLLIN for the next pipelined request, not a disconnect).
    std::atomic<bool> executing{false};
    std::atomic<bool> done{false};
  };

  /// One background job: an engine request executing on its own thread,
  /// detached from any connection (disconnects cannot cancel it — only
  /// job.cancel or server shutdown fire its token).
  struct Job {
    std::string name;
    EngineRequest request;  ///< the engine command the job runs
    CancelToken cancel;
    std::thread thread;
    std::atomic<bool> done{false};
    /// Valid once done is true (release/acquire on `done` orders it).
    EngineResponse response;
  };

  void AcceptLoop();
  void WatchdogLoop();
  void ConnectionLoop(Connection* connection);
  /// Dispatches one parsed request; returns the response payload to frame.
  /// Sets `*stop_after_reply` for server.stop.
  std::string HandleRequest(const Json& request_json, Connection* connection,
                            bool* stop_after_reply);
  EngineResponse HandleServeVerb(const EngineRequest& request,
                                 Connection* connection,
                                 bool* stop_after_reply);
  EngineResponse HandleEngineCommand(EngineRequest request,
                                     Connection* connection);
  /// job.start / job.status / job.cancel / job.resume.
  EngineResponse HandleJobVerb(const EngineRequest& request);
  /// Spawns the background thread for job.start / job.resume (`resume`
  /// forces options.resume on the inner request).
  EngineResponse StartJob(const EngineRequest& request, bool resume);
  ExecutionOptions BaseOptions(Connection* connection);
  void ReapFinishedConnections();

  ServerConfig config_;
  int unix_fd_ = -1;
  int tcp_fd_ = -1;
  int tcp_port_ = -1;
  int stop_pipe_[2] = {-1, -1};

  std::unique_ptr<ThreadPool> pool_;
  SessionManager sessions_;
  ServerMetrics metrics_;

  std::atomic<bool> stopping_{false};
  std::atomic<int> inflight_{0};
  std::thread acceptor_;
  std::thread watchdog_;
  std::mutex connections_mu_;
  std::vector<std::unique_ptr<Connection>> connections_;
  /// Background jobs by name. Entries persist after completion so
  /// job.status can report the result; a finished job's slot is reclaimed
  /// by starting a new job under the same name.
  std::mutex jobs_mu_;
  std::map<std::string, std::shared_ptr<Job>> jobs_;

  std::mutex stopped_mu_;
  std::condition_variable stopped_cv_;
  bool started_ = false;
  bool stopped_ = false;
  /// First Wait() caller performs the join; later callers wait for it.
  bool joining_claimed_in_wait_ = false;
};

}  // namespace mapinv

#endif  // MAPINV_SERVE_SERVER_H_
