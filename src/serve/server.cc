#include "serve/server.h"

#include <cerrno>
#include <cstring>
#include <utility>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#ifndef POLLRDHUP
#define POLLRDHUP 0x2000
#endif

#include "engine/thread_pool.h"

namespace mapinv {
namespace {

Status SysError(const char* what) {
  return Status::Internal(std::string(what) + ": " + std::strerror(errno));
}

// Builds a no-result response carrying `status` (or a text result when OK).
EngineResponse VerbResponse(int64_t id, Status status,
                            std::string text = std::string(),
                            ResultKind kind = ResultKind::kText) {
  EngineResponse response;
  response.id = id;
  response.status = std::move(status);
  if (response.status.ok()) {
    response.kind = kind;
    response.result = std::move(text);
  }
  return response;
}

}  // namespace

Server::Server(ServerConfig config)
    : config_(std::move(config)), sessions_(config_.max_sessions) {
  if (config_.threads < 1) config_.threads = 1;
  if (config_.max_inflight <= 0) config_.max_inflight = config_.max_connections;
  if (config_.pool_workers <= 0) config_.pool_workers = config_.threads - 1;
}

Server::~Server() {
  RequestStop();
  Wait();
}

Status Server::Start() {
  if (config_.unix_path.empty() && config_.tcp_port < 0) {
    return Status::InvalidArgument(
        "server needs a unix path or a TCP port to listen on");
  }
  if (::pipe(stop_pipe_) != 0) return SysError("pipe");

  if (!config_.unix_path.empty()) {
    unix_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (unix_fd_ < 0) return SysError("socket(unix)");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (config_.unix_path.size() >= sizeof(addr.sun_path)) {
      return Status::InvalidArgument("unix socket path too long: '" +
                                     config_.unix_path + "'");
    }
    std::strncpy(addr.sun_path, config_.unix_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    ::unlink(config_.unix_path.c_str());
    if (::bind(unix_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      return SysError("bind(unix)");
    }
    if (::listen(unix_fd_, 128) != 0) return SysError("listen(unix)");
  }

  if (config_.tcp_port >= 0) {
    tcp_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (tcp_fd_ < 0) return SysError("socket(tcp)");
    const int one = 1;
    ::setsockopt(tcp_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(config_.tcp_port));
    if (::inet_pton(AF_INET, config_.tcp_host.c_str(), &addr.sin_addr) != 1) {
      return Status::InvalidArgument("bad TCP host '" + config_.tcp_host +
                                     "'");
    }
    if (::bind(tcp_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      return SysError("bind(tcp)");
    }
    if (::listen(tcp_fd_, 128) != 0) return SysError("listen(tcp)");
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(tcp_fd_, reinterpret_cast<sockaddr*>(&bound), &len) !=
        0) {
      return SysError("getsockname");
    }
    tcp_port_ = static_cast<int>(ntohs(bound.sin_port));
  }

  pool_ = std::make_unique<ThreadPool>(config_.pool_workers);
  acceptor_ = std::thread([this] { AcceptLoop(); });
  watchdog_ = std::thread([this] { WatchdogLoop(); });
  {
    std::lock_guard<std::mutex> lock(stopped_mu_);
    started_ = true;
  }
  return Status::OK();
}

void Server::RequestStop() {
  if (stopping_.exchange(true)) {
    stopped_cv_.notify_all();
    return;
  }
  if (stop_pipe_[1] >= 0) {
    const char byte = 'x';
    [[maybe_unused]] ssize_t ignored = ::write(stop_pipe_[1], &byte, 1);
  }
  stopped_cv_.notify_all();
}

void Server::Wait() {
  {
    std::unique_lock<std::mutex> lock(stopped_mu_);
    if (!started_) return;
    stopped_cv_.wait(lock, [this] { return stopping_.load() || stopped_; });
    if (stopped_) return;
    if (!joining_claimed_in_wait_) {
      joining_claimed_in_wait_ = true;
    } else {
      stopped_cv_.wait(lock, [this] { return stopped_; });
      return;
    }
  }
  // Sole teardown path from here.
  if (acceptor_.joinable()) acceptor_.join();
  if (watchdog_.joinable()) watchdog_.join();
  {
    std::lock_guard<std::mutex> lock(connections_mu_);
    for (auto& connection : connections_) {
      connection->cancel.Cancel();
      if (connection->fd >= 0) ::shutdown(connection->fd, SHUT_RDWR);
    }
  }
  for (auto& connection : connections_) {
    if (connection->thread.joinable()) connection->thread.join();
  }
  // Background jobs: cancel, then join. A checkpointed job unwinds at its
  // next poll point; its directory resumes it on the next server start.
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    for (auto& [_, job] : jobs_) job->cancel.Cancel();
  }
  for (auto& [_, job] : jobs_) {
    if (job->thread.joinable()) job->thread.join();
  }
  if (unix_fd_ >= 0) {
    ::close(unix_fd_);
    ::unlink(config_.unix_path.c_str());
    unix_fd_ = -1;
  }
  if (tcp_fd_ >= 0) {
    ::close(tcp_fd_);
    tcp_fd_ = -1;
  }
  for (int& fd : stop_pipe_) {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }
  {
    std::lock_guard<std::mutex> lock(stopped_mu_);
    stopped_ = true;
  }
  stopped_cv_.notify_all();
}

void Server::ReapFinishedConnections() {
  std::lock_guard<std::mutex> lock(connections_mu_);
  for (auto it = connections_.begin(); it != connections_.end();) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void Server::AcceptLoop() {
  while (!stopping_.load()) {
    pollfd fds[3];
    nfds_t nfds = 0;
    fds[nfds++] = {stop_pipe_[0], POLLIN, 0};
    if (unix_fd_ >= 0) fds[nfds++] = {unix_fd_, POLLIN, 0};
    if (tcp_fd_ >= 0) fds[nfds++] = {tcp_fd_, POLLIN, 0};
    const int ready = ::poll(fds, nfds, 500);
    if (stopping_.load()) break;
    if (ready <= 0) continue;
    for (nfds_t i = 1; i < nfds; ++i) {
      if ((fds[i].revents & POLLIN) == 0) continue;
      const int client = ::accept(fds[i].fd, nullptr, nullptr);
      if (client < 0) continue;
      metrics_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
      ReapFinishedConnections();
      {
        std::lock_guard<std::mutex> lock(connections_mu_);
        if (connections_.size() >=
            static_cast<size_t>(config_.max_connections)) {
          metrics_.connections_rejected.fetch_add(1,
                                                  std::memory_order_relaxed);
          const EngineResponse refusal = VerbResponse(
              0, Status::ResourceExhausted(
                     "connection capacity reached (" +
                     std::to_string(config_.max_connections) + ")"));
          (void)WriteFrame(client, ResponseToJson(refusal).Serialize(),
                           config_.max_frame_bytes);
          ::close(client);
          continue;
        }
        auto connection = std::make_unique<Connection>();
        connection->fd = client;
        Connection* raw = connection.get();
        connection->thread =
            std::thread([this, raw] { ConnectionLoop(raw); });
        connections_.push_back(std::move(connection));
      }
    }
  }
}

void Server::WatchdogLoop() {
  int ticks_until_sweep = 0;
  while (!stopping_.load()) {
    pollfd stop = {stop_pipe_[0], POLLIN, 0};
    ::poll(&stop, 1, 20);
    if (stopping_.load()) break;
    // Idle-session eviction (--session-ttl-ms), roughly once a second.
    if (config_.session_ttl_ms > 0 && --ticks_until_sweep <= 0) {
      ticks_until_sweep = 50;
      const size_t evicted = sessions_.EvictIdle(config_.session_ttl_ms);
      if (evicted > 0) {
        metrics_.sessions_evicted.fetch_add(evicted,
                                            std::memory_order_relaxed);
      }
    }
    std::lock_guard<std::mutex> lock(connections_mu_);
    for (auto& connection : connections_) {
      if (!connection->executing.load(std::memory_order_acquire)) continue;
      if (connection->cancel.Cancelled()) continue;
      pollfd probe = {connection->fd,
                      static_cast<short>(POLLRDHUP | POLLERR | POLLHUP), 0};
      if (::poll(&probe, 1, 0) <= 0) continue;
      if ((probe.revents & (POLLRDHUP | POLLERR | POLLHUP | POLLNVAL)) != 0) {
        connection->cancel.Cancel();
        metrics_.disconnect_cancels.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
}

ExecutionOptions Server::BaseOptions(Connection* connection) {
  ExecutionOptions options;
  static_cast<ResourceLimits&>(options) = config_.limits;
  options.threads = config_.threads;
  options.pool = pool_.get();
  options.on_exhausted = config_.on_exhausted;
  options.cancel = &connection->cancel;
  return options;
}

EngineResponse Server::HandleServeVerb(const EngineRequest& request,
                                       Connection* connection,
                                       bool* stop_after_reply) {
  const std::string& command = request.command;
  if (command == "session.open") {
    Result<std::shared_ptr<Session>> session = sessions_.Open(request.session);
    if (!session.ok()) return VerbResponse(request.id, session.status());
    if (!request.mapping.empty()) {
      Status set = (*session)->SetMapping(request.mapping);
      if (!set.ok()) {
        // A session with no parseable mapping is useless; undo the open.
        (void)sessions_.Close(request.session);
        return VerbResponse(request.id, std::move(set));
      }
    }
    return VerbResponse(request.id, Status::OK(),
                        "session '" + request.session + "' open");
  }
  if (command == "session.close") {
    Status closed = sessions_.Close(request.session);
    if (!closed.ok()) return VerbResponse(request.id, std::move(closed));
    return VerbResponse(request.id, Status::OK(),
                        "session '" + request.session + "' closed");
  }
  if (command == "session.list") {
    Json names = Json::MakeArray();
    for (const std::string& name : sessions_.Names()) {
      names.Append(Json(name));
    }
    return VerbResponse(request.id, Status::OK(), names.Serialize());
  }
  if (command == "instance.put") {
    Result<std::shared_ptr<Session>> session = sessions_.Get(request.session);
    if (!session.ok()) return VerbResponse(request.id, session.status());
    Status put = (*session)->PutInstance(request.name, request.instance);
    if (!put.ok()) return VerbResponse(request.id, std::move(put));
    return VerbResponse(request.id, Status::OK(),
                        "instance '" + request.name + "' registered in "
                        "session '" + request.session + "'");
  }
  if (command == "instance.append") {
    Result<std::shared_ptr<Session>> session = sessions_.Get(request.session);
    if (!session.ok()) return VerbResponse(request.id, session.status());
    // The appended rows ride in "delta" ("instance" also accepted). The
    // verb chases — incrementally — so it runs like an engine command:
    // cancellable, under the server's execution budget.
    const std::string& payload =
        !request.delta.empty() ? request.delta : request.instance;
    if (payload.empty()) {
      return VerbResponse(
          request.id,
          Status::InvalidArgument("instance.append needs rows in \"delta\""));
    }
    connection->cancel.Reset();
    connection->executing.store(true, std::memory_order_release);
    std::string rendered;
    size_t appended = 0;
    Status status = (*session)->AppendInstance(
        request.name, payload, BaseOptions(connection), &rendered, &appended);
    connection->executing.store(false, std::memory_order_release);
    if (!status.ok()) return VerbResponse(request.id, std::move(status));
    return VerbResponse(request.id, Status::OK(), std::move(rendered),
                        ResultKind::kInstance);
  }
  if (command == "instance.save") {
    Result<std::shared_ptr<Session>> session = sessions_.Get(request.session);
    if (!session.ok()) return VerbResponse(request.id, session.status());
    Status saved = (*session)->SaveInstance(request.name, request.path);
    if (!saved.ok()) return VerbResponse(request.id, std::move(saved));
    return VerbResponse(request.id, Status::OK(),
                        "instance '" + request.name + "' saved to '" +
                        request.path + "'");
  }
  if (command == "instance.load") {
    Result<std::shared_ptr<Session>> session = sessions_.Get(request.session);
    if (!session.ok()) return VerbResponse(request.id, session.status());
    Status loaded = (*session)->LoadInstance(request.name, request.path);
    if (!loaded.ok()) return VerbResponse(request.id, std::move(loaded));
    return VerbResponse(request.id, Status::OK(),
                        "instance '" + request.name + "' loaded from '" +
                        request.path + "' into session '" + request.session +
                        "'");
  }
  if (command == "job.start" || command == "job.status" ||
      command == "job.cancel" || command == "job.resume") {
    return HandleJobVerb(request);
  }
  if (command == "metrics") {
    return VerbResponse(request.id, Status::OK(), MetricsJson().Serialize());
  }
  if (command == "server.stop") {
    if (!config_.allow_stop) {
      return VerbResponse(
          request.id,
          Status::InvalidArgument("server.stop is disabled on this server"));
    }
    *stop_after_reply = true;
    return VerbResponse(request.id, Status::OK(), "stopping");
  }
  return VerbResponse(request.id, Status::InvalidArgument(
                                      "unknown command '" + command + "'"));
}

EngineResponse Server::StartJob(const EngineRequest& request, bool resume) {
  if (request.name.empty()) {
    return VerbResponse(
        request.id, Status::InvalidArgument(request.command +
                                            " needs a job \"name\""));
  }
  if (request.run.empty() || !IsEngineCommand(request.run)) {
    return VerbResponse(
        request.id,
        Status::InvalidArgument(request.command +
                                " needs an engine command in \"run\""));
  }
  EngineRequest inner = request;
  inner.command = inner.run;
  inner.run.clear();
  if (resume) inner.options.resume = true;
  // Session payloads resolve now, on the caller's thread: the job holds
  // shared_ptr copies, so a later session.close or idle eviction cannot
  // yank state out from under the running enumeration.
  if (!inner.session.empty()) {
    Result<std::shared_ptr<Session>> found = sessions_.Get(inner.session);
    if (!found.ok()) return VerbResponse(request.id, found.status());
    if (inner.bound_mapping == nullptr && inner.mapping.empty()) {
      inner.bound_mapping = (*found)->mapping();
    }
    if (!inner.instance_ref.empty()) {
      inner.bound_instance = (*found)->instance(inner.instance_ref);
      if (inner.bound_instance == nullptr) {
        return VerbResponse(
            request.id,
            Status::NotFound("no instance '" + inner.instance_ref +
                             "' in session '" + inner.session + "'"));
      }
    }
  }
  auto job = std::make_shared<Job>();
  job->name = request.name;
  job->request = std::move(inner);
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    auto it = jobs_.find(request.name);
    if (it != jobs_.end()) {
      if (!it->second->done.load(std::memory_order_acquire)) {
        return VerbResponse(
            request.id, Status::InvalidArgument("job '" + request.name +
                                                "' is still running"));
      }
      // Reclaim the finished slot (its thread has already run to the final
      // store; the join is immediate).
      if (it->second->thread.joinable()) it->second->thread.join();
      jobs_.erase(it);
    }
    if (jobs_.size() >= config_.max_jobs) {
      return VerbResponse(
          request.id,
          Status::ResourceExhausted("job capacity reached (" +
                                    std::to_string(config_.max_jobs) + ")"));
    }
    Job* raw = job.get();
    job->thread = std::thread([this, raw] {
      ExecutionOptions options;
      static_cast<ResourceLimits&>(options) = config_.limits;
      options.threads = config_.threads;
      options.pool = pool_.get();
      options.on_exhausted = config_.on_exhausted;
      options.cancel = &raw->cancel;
      raw->response = ExecuteRequest(raw->request, options);
      raw->done.store(true, std::memory_order_release);
      metrics_.jobs_finished.fetch_add(1, std::memory_order_relaxed);
    });
    jobs_[request.name] = std::move(job);
  }
  metrics_.jobs_started.fetch_add(1, std::memory_order_relaxed);
  return VerbResponse(request.id, Status::OK(),
                      "job '" + request.name + "' " +
                          (resume ? "resuming" : "started"));
}

EngineResponse Server::HandleJobVerb(const EngineRequest& request) {
  const std::string& command = request.command;
  if (command == "job.start") return StartJob(request, /*resume=*/false);
  if (command == "job.resume") return StartJob(request, /*resume=*/true);
  std::shared_ptr<Job> job;
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    auto it = jobs_.find(request.name);
    if (it != jobs_.end()) job = it->second;
  }
  if (job == nullptr) {
    return VerbResponse(request.id,
                        Status::NotFound("no job '" + request.name + "'"));
  }
  if (command == "job.status") {
    Json json = Json::MakeObject();
    json.Set("name", Json(job->name));
    if (!job->done.load(std::memory_order_acquire)) {
      json.Set("state",
               Json(job->cancel.Cancelled() ? "cancelling" : "running"));
    } else {
      const EngineResponse& finished = job->response;
      json.Set("state",
               Json(finished.status.ok() ? "done"
                    : finished.status.code() == StatusCode::kCancelled
                        ? "cancelled"
                        : "error"));
      json.Set("response", ResponseToJson(finished));
    }
    return VerbResponse(request.id, Status::OK(), json.Serialize());
  }
  if (command == "job.cancel") {
    job->cancel.Cancel();
    return VerbResponse(request.id, Status::OK(),
                        "job '" + job->name + "' cancel requested");
  }
  return VerbResponse(request.id, Status::InvalidArgument(
                                      "unknown command '" + command + "'"));
}

EngineResponse Server::HandleEngineCommand(EngineRequest request,
                                           Connection* connection) {
  // Admission control: answer immediately instead of queueing unboundedly.
  const int inflight = inflight_.fetch_add(1, std::memory_order_acq_rel);
  if (inflight >= config_.max_inflight) {
    inflight_.fetch_sub(1, std::memory_order_acq_rel);
    metrics_.requests_rejected.fetch_add(1, std::memory_order_relaxed);
    return VerbResponse(
        request.id,
        Status::ResourceExhausted(
            "admission control: " + std::to_string(config_.max_inflight) +
            " requests already in flight"));
  }

  std::shared_ptr<Session> session;
  EngineResponse response;
  bool served_from_cache = false;
  if (!request.session.empty()) {
    Result<std::shared_ptr<Session>> found = sessions_.Get(request.session);
    if (!found.ok()) {
      inflight_.fetch_sub(1, std::memory_order_acq_rel);
      return VerbResponse(request.id, found.status());
    }
    session = *found;
    if (request.bound_mapping == nullptr && request.mapping.empty()) {
      request.bound_mapping = session->mapping();
    }
    if (!request.instance_ref.empty()) {
      if (request.command == "exchange-delta") {
        // Bind the session's maintained solution (created on first use,
        // seeded from the registered snapshot) instead of the immutable
        // instance: the command appends to and refreshes it in place.
        Result<std::shared_ptr<MaintainedSolution>> maintained =
            session->MaintainedFor(request.instance_ref);
        if (!maintained.ok()) {
          inflight_.fetch_sub(1, std::memory_order_acq_rel);
          return VerbResponse(request.id, maintained.status());
        }
        request.bound_maintained = *maintained;
      } else {
        request.bound_instance = session->instance(request.instance_ref);
        if (request.bound_instance == nullptr) {
          inflight_.fetch_sub(1, std::memory_order_acq_rel);
          return VerbResponse(
              request.id,
              Status::NotFound("no instance '" + request.instance_ref +
                               "' in session '" + request.session + "'"));
        }
      }
    }
    if (request.command == "invert" || request.command == "maxrec") {
      std::string cached_text;
      if (auto inverse = session->CachedInverse(request.command, &cached_text);
          inverse != nullptr) {
        response = VerbResponse(request.id, Status::OK(),
                                std::move(cached_text),
                                ResultKind::kReverseMapping);
        served_from_cache = true;
      }
    } else if (request.command == "roundtrip" || request.command == "check") {
      // The memoized inverse also short-circuits the recovery recomputation
      // inside roundtrip.
      if (request.command == "roundtrip") {
        request.bound_reverse = session->CachedInverse("invert", nullptr);
      }
    }
  }

  if (!served_from_cache) {
    connection->cancel.Reset();
    connection->executing.store(true, std::memory_order_release);
    response = ExecuteRequest(request, BaseOptions(connection));
    connection->executing.store(false, std::memory_order_release);
    if (session != nullptr && response.status.ok() &&
        response.reverse_artifact != nullptr &&
        (request.command == "invert" || request.command == "maxrec")) {
      session->CacheInverse(request.command, response.reverse_artifact,
                            response.result);
    }
    if (session != nullptr && response.status.ok() &&
        request.command == "exchange-delta" &&
        request.bound_maintained != nullptr &&
        !request.instance_ref.empty()) {
      // Publish the grown source so later by-ref requests (plain exchange,
      // check, ...) see the appended rows too.
      session->SyncRegisteredSource(request.instance_ref,
                                    request.bound_maintained->SourceSnapshot());
    }
  }
  inflight_.fetch_sub(1, std::memory_order_acq_rel);
  if (session != nullptr) session->RecordOutcome(response);
  return response;
}

std::string Server::HandleRequest(const Json& request_json,
                                  Connection* connection,
                                  bool* stop_after_reply) {
  metrics_.requests.fetch_add(1, std::memory_order_relaxed);
  EngineResponse response;
  Result<EngineRequest> request = EngineRequestFromJson(request_json);
  if (!request.ok()) {
    response.status = request.status();
  } else if (IsEngineCommand(request->command)) {
    response = HandleEngineCommand(std::move(*request), connection);
  } else {
    response = HandleServeVerb(*request, connection, stop_after_reply);
  }
  if (response.status.ok()) {
    metrics_.requests_ok.fetch_add(1, std::memory_order_relaxed);
  } else {
    metrics_.requests_error.fetch_add(1, std::memory_order_relaxed);
  }
  return ResponseToJson(response).Serialize();
}

void Server::ConnectionLoop(Connection* connection) {
  std::string payload;
  while (!stopping_.load()) {
    Result<bool> frame =
        ReadFrame(connection->fd, config_.max_frame_bytes, &payload);
    if (!frame.ok()) {
      // Framing is broken: answer if the status is a protocol violation,
      // then drop the connection (we are no longer at a frame boundary).
      if (frame.status().code() == StatusCode::kMalformed) {
        metrics_.malformed_frames.fetch_add(1, std::memory_order_relaxed);
        EngineResponse refusal;
        refusal.status = frame.status();
        (void)WriteFrame(connection->fd, ResponseToJson(refusal).Serialize(),
                         config_.max_frame_bytes);
      }
      break;
    }
    if (!*frame) break;  // clean disconnect
    metrics_.frames_read.fetch_add(1, std::memory_order_relaxed);

    bool stop_after_reply = false;
    std::string reply;
    Result<Json> parsed = Json::Parse(payload);
    if (!parsed.ok()) {
      // Framing is intact, the payload is not JSON: application error,
      // connection survives.
      metrics_.requests.fetch_add(1, std::memory_order_relaxed);
      metrics_.requests_error.fetch_add(1, std::memory_order_relaxed);
      EngineResponse bad;
      bad.status = parsed.status();
      reply = ResponseToJson(bad).Serialize();
    } else {
      reply = HandleRequest(*parsed, connection, &stop_after_reply);
    }
    if (!WriteFrame(connection->fd, reply, config_.max_frame_bytes).ok()) {
      break;
    }
    if (stop_after_reply) {
      RequestStop();
      break;
    }
  }
  ::close(connection->fd);
  connection->fd = -1;
  connection->done.store(true, std::memory_order_release);
}

Json Server::MetricsJson() const {
  Json server = Json::MakeObject();
  const ServerMetrics& m = metrics_;
  server.Set("connections_accepted",
             Json(m.connections_accepted.load(std::memory_order_relaxed)));
  server.Set("connections_rejected",
             Json(m.connections_rejected.load(std::memory_order_relaxed)));
  server.Set("frames_read",
             Json(m.frames_read.load(std::memory_order_relaxed)));
  server.Set("malformed_frames",
             Json(m.malformed_frames.load(std::memory_order_relaxed)));
  server.Set("requests", Json(m.requests.load(std::memory_order_relaxed)));
  server.Set("requests_ok",
             Json(m.requests_ok.load(std::memory_order_relaxed)));
  server.Set("requests_error",
             Json(m.requests_error.load(std::memory_order_relaxed)));
  server.Set("requests_rejected",
             Json(m.requests_rejected.load(std::memory_order_relaxed)));
  server.Set("disconnect_cancels",
             Json(m.disconnect_cancels.load(std::memory_order_relaxed)));
  server.Set("sessions_evicted",
             Json(m.sessions_evicted.load(std::memory_order_relaxed)));
  server.Set("jobs_started",
             Json(m.jobs_started.load(std::memory_order_relaxed)));
  server.Set("jobs_finished",
             Json(m.jobs_finished.load(std::memory_order_relaxed)));
  server.Set("inflight",
             Json(static_cast<int64_t>(inflight_.load())));
  Json json = Json::MakeObject();
  json.Set("server", std::move(server));
  json.Set("sessions", sessions_.MetricsJson());
  return json;
}

}  // namespace mapinv
