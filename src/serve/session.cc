#include "serve/session.h"

#include <chrono>
#include <utility>

#include "parser/parser.h"

namespace mapinv {
namespace {

int64_t MonotonicMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Json SessionMetrics::ToJson() const {
  Json json = Json::MakeObject();
  json.Set("requests", Json(requests));
  json.Set("ok", Json(ok));
  json.Set("errors", Json(errors));
  json.Set("cancelled", Json(cancelled));
  json.Set("exhausted", Json(exhausted));
  json.Set("partial", Json(partial));
  json.Set("inverse_cache_hits", Json(inverse_cache_hits));
  json.Set("stats", StatsToJson(totals));
  return json;
}

Status Session::SetMapping(std::string_view spec) {
  MAPINV_ASSIGN_OR_RETURN(TgdMapping mapping, LoadMappingSpec(spec));
  auto shared = std::make_shared<const TgdMapping>(std::move(mapping));
  std::lock_guard<std::mutex> lock(mu_);
  mapping_ = std::move(shared);
  instances_.clear();
  maintained_.clear();
  inverses_.clear();
  return Status::OK();
}

Status Session::PutInstance(const std::string& name, std::string_view text) {
  if (name.empty()) {
    return Status::InvalidArgument("instance.put needs a non-empty \"name\"");
  }
  std::shared_ptr<const TgdMapping> mapping;
  {
    std::lock_guard<std::mutex> lock(mu_);
    mapping = mapping_;
  }
  if (mapping == nullptr) {
    return Status::InvalidArgument("session '" + name_ +
                                   "' has no mapping; session.open must "
                                   "supply one before instance.put");
  }
  MAPINV_ASSIGN_OR_RETURN(Instance instance,
                          ParseInstance(text, *mapping->source));
  auto shared = std::make_shared<const Instance>(instance.Snapshot());
  std::lock_guard<std::mutex> lock(mu_);
  instances_[name] = std::move(shared);
  // A put replaces the rows wholesale; any maintained solution over the old
  // rows is no longer an extension of them.
  maintained_.erase(name);
  return Status::OK();
}

Result<std::shared_ptr<MaintainedSolution>> Session::MaintainedFor(
    const std::string& name) {
  if (name.empty()) {
    return Status::InvalidArgument(
        "maintained solutions need a non-empty instance name");
  }
  std::shared_ptr<const TgdMapping> mapping;
  std::shared_ptr<const Instance> seed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = maintained_.find(name);
    if (it != maintained_.end()) return it->second;
    mapping = mapping_;
    auto reg = instances_.find(name);
    if (reg == instances_.end()) {
      // Parity with exchange over an instance_ref: maintaining an instance
      // that was never put is a clean not-found, not a silent empty create.
      return Status::NotFound("session '" + name_ + "' has no instance '" +
                              name + "'");
    }
    seed = reg->second;
  }
  if (mapping == nullptr) {
    return Status::InvalidArgument("session '" + name_ +
                                   "' has no mapping; session.open must "
                                   "supply one before maintained solutions");
  }
  auto maintained = std::make_shared<MaintainedSolution>(std::move(mapping));
  if (seed != nullptr) {
    MAPINV_RETURN_NOT_OK(maintained->AppendInstance(*seed).status());
  }
  std::lock_guard<std::mutex> lock(mu_);
  // Two racing creators: first insert wins, the loser's copy is dropped.
  return maintained_.emplace(name, std::move(maintained)).first->second;
}

Status Session::AppendInstance(const std::string& name, std::string_view text,
                               const ExecutionOptions& options,
                               std::string* rendered, size_t* appended) {
  MAPINV_ASSIGN_OR_RETURN(std::shared_ptr<MaintainedSolution> maintained,
                          MaintainedFor(name));
  MAPINV_ASSIGN_OR_RETURN(size_t added, maintained->AppendText(text));
  if (appended != nullptr) *appended = added;
  MAPINV_ASSIGN_OR_RETURN(std::string out,
                          maintained->RefreshAndRender(options));
  if (rendered != nullptr) *rendered = std::move(out);
  SyncRegisteredSource(name, maintained->SourceSnapshot());
  return Status::OK();
}

void Session::SyncRegisteredSource(const std::string& name, Instance source) {
  auto shared = std::make_shared<const Instance>(std::move(source));
  std::lock_guard<std::mutex> lock(mu_);
  instances_[name] = std::move(shared);
}

Status Session::SaveInstance(const std::string& name,
                             const std::string& path) const {
  if (path.empty()) {
    return Status::InvalidArgument("instance.save needs a non-empty \"path\"");
  }
  std::shared_ptr<const Instance> snapshot = instance(name);
  if (snapshot == nullptr) {
    return Status::NotFound("session '" + name_ + "' has no instance '" +
                            name + "'");
  }
  return snapshot->Save(path);
}

Status Session::LoadInstance(const std::string& name,
                             const std::string& path) {
  if (name.empty()) {
    return Status::InvalidArgument("instance.load needs a non-empty \"name\"");
  }
  if (path.empty()) {
    return Status::InvalidArgument("instance.load needs a non-empty \"path\"");
  }
  std::shared_ptr<const TgdMapping> mapping;
  {
    std::lock_guard<std::mutex> lock(mu_);
    mapping = mapping_;
  }
  if (mapping == nullptr) {
    return Status::InvalidArgument("session '" + name_ +
                                   "' has no mapping; session.open must "
                                   "supply one before instance.load");
  }
  MAPINV_ASSIGN_OR_RETURN(Instance loaded, Instance::Load(path));
  // Relation ids are positional in both the snapshot directory and the
  // mapping's compiled atoms, so the schemas must match id-for-id.
  const Schema& want = *mapping->source;
  const Schema& got = loaded.schema();
  bool match = got.size() == want.size();
  for (RelationId r = 0; match && r < want.size(); ++r) {
    match = got.name(r) == want.name(r) && got.arity(r) == want.arity(r);
  }
  if (!match) {
    return Status::InvalidArgument(
        "snapshot '" + path + "' does not match the source schema of "
        "session '" + name_ + "'");
  }
  auto shared = std::make_shared<const Instance>(std::move(loaded));
  std::lock_guard<std::mutex> lock(mu_);
  instances_[name] = std::move(shared);
  // Like instance.put: the rows were replaced wholesale, not appended.
  maintained_.erase(name);
  return Status::OK();
}

std::shared_ptr<const TgdMapping> Session::mapping() const {
  std::lock_guard<std::mutex> lock(mu_);
  return mapping_;
}

std::shared_ptr<const Instance> Session::instance(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = instances_.find(name);
  return it == instances_.end() ? nullptr : it->second;
}

std::vector<std::string> Session::InstanceNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(instances_.size());
  for (const auto& [name, _] : instances_) names.push_back(name);
  return names;
}

std::shared_ptr<const ReverseMapping> Session::CachedInverse(
    const std::string& command, std::string* result_text) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = inverses_.find(command);
  if (it == inverses_.end()) return nullptr;
  ++metrics_.inverse_cache_hits;
  if (result_text != nullptr) *result_text = it->second.result_text;
  return it->second.inverse;
}

void Session::CacheInverse(const std::string& command,
                           std::shared_ptr<const ReverseMapping> inverse,
                           std::string result_text) {
  std::lock_guard<std::mutex> lock(mu_);
  inverses_[command] = InverseEntry{std::move(inverse),
                                    std::move(result_text)};
}

void Session::RecordOutcome(const EngineResponse& response) {
  std::lock_guard<std::mutex> lock(mu_);
  ++metrics_.requests;
  if (response.status.ok()) {
    ++metrics_.ok;
  } else if (response.status.code() == StatusCode::kCancelled) {
    ++metrics_.cancelled;
    ++metrics_.errors;
  } else if (response.status.code() == StatusCode::kResourceExhausted) {
    ++metrics_.exhausted;
    ++metrics_.errors;
  } else {
    ++metrics_.errors;
  }
  if (response.partial) ++metrics_.partial;
  const ExecStatsSnapshot& s = response.stats;
  metrics_.totals.chase_steps += s.chase_steps;
  metrics_.totals.hom_backtracks += s.hom_backtracks;
  metrics_.totals.hom_searches += s.hom_searches;
  metrics_.totals.hom_plans_compiled += s.hom_plans_compiled;
  metrics_.totals.hom_bucket_candidates += s.hom_bucket_candidates;
  metrics_.totals.hom_slot_bindings += s.hom_slot_bindings;
  metrics_.totals.cache_hits += s.cache_hits;
  metrics_.totals.cache_misses += s.cache_misses;
  if (s.tuples_arena_bytes > metrics_.totals.tuples_arena_bytes) {
    metrics_.totals.tuples_arena_bytes = s.tuples_arena_bytes;
  }
  metrics_.totals.index_catchup_rows += s.index_catchup_rows;
  metrics_.totals.vector_blocks_scanned += s.vector_blocks_scanned;
  metrics_.totals.vector_rows_scanned += s.vector_rows_scanned;
  metrics_.totals.vector_rows_selected += s.vector_rows_selected;
  metrics_.totals.bulk_rows_appended += s.bulk_rows_appended;
  metrics_.totals.worlds_forked += s.worlds_forked;
  metrics_.totals.segments_spilled += s.segments_spilled;
  metrics_.totals.segments_faulted += s.segments_faulted;
  if (s.arena_resident_bytes > metrics_.totals.arena_resident_bytes) {
    metrics_.totals.arena_resident_bytes = s.arena_resident_bytes;
  }
  metrics_.totals.vector_plan_fallbacks += s.vector_plan_fallbacks;
  metrics_.totals.segment_faultin_retries += s.segment_faultin_retries;
  metrics_.totals.jobs_checkpointed += s.jobs_checkpointed;
  metrics_.totals.worlds_resumed += s.worlds_resumed;
  metrics_.totals.checkpoint_bytes += s.checkpoint_bytes;
  if (s.partial) metrics_.totals.partial = true;
}

void Session::Touch() {
  last_active_ms_.store(MonotonicMs(), std::memory_order_relaxed);
}

int64_t Session::IdleMs() const {
  return MonotonicMs() - last_active_ms_.load(std::memory_order_relaxed);
}

SessionMetrics Session::MetricsSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return metrics_;
}

Result<std::shared_ptr<Session>> SessionManager::Open(
    const std::string& name) {
  if (name.empty()) {
    return Status::InvalidArgument("session.open needs a non-empty name");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (sessions_.count(name) != 0) {
    return Status::InvalidArgument("session '" + name + "' already exists");
  }
  if (sessions_.size() >= max_sessions_) {
    return Status::ResourceExhausted(
        "session capacity reached (" + std::to_string(max_sessions_) + ")");
  }
  auto session = std::make_shared<Session>(name);
  sessions_[name] = session;
  return session;
}

Result<std::shared_ptr<Session>> SessionManager::Get(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(name);
  if (it == sessions_.end()) {
    return Status::NotFound("no session '" + name + "'");
  }
  it->second->Touch();
  return it->second;
}

size_t SessionManager::EvictIdle(int64_t ttl_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t evicted = 0;
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if (it->second->IdleMs() > ttl_ms) {
      it = sessions_.erase(it);
      ++evicted;
    } else {
      ++it;
    }
  }
  return evicted;
}

Status SessionManager::Close(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (sessions_.erase(name) == 0) {
    return Status::NotFound("no session '" + name + "'");
  }
  return Status::OK();
}

std::vector<std::string> SessionManager::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(sessions_.size());
  for (const auto& [name, _] : sessions_) names.push_back(name);
  return names;
}

Json SessionManager::MetricsJson() const {
  std::vector<std::shared_ptr<Session>> sessions;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sessions.reserve(sessions_.size());
    for (const auto& [_, session] : sessions_) sessions.push_back(session);
  }
  Json json = Json::MakeObject();
  for (const auto& session : sessions) {
    json.Set(session->name(), session->MetricsSnapshot().ToJson());
  }
  return json;
}

}  // namespace mapinv
