/// \file protocol.h
/// \brief The mapinv_serve wire format: length-prefixed JSON frames.
///
/// A frame is a 4-byte big-endian payload length followed by that many
/// bytes of UTF-8 JSON. Requests are EngineRequest documents (plus the
/// serving verbs session.open / session.close / session.list /
/// instance.put / metrics / server.stop); responses are the canonical
/// EngineResponse documents rendered by ResponseToJson — the same bytes
/// mapinv_cli --response-json prints for the same request.
///
/// Framing rules:
///   * a declared length of zero or above the receiver's limit is a
///     protocol violation (kMalformed) — the connection is no longer at a
///     frame boundary and must be closed;
///   * EOF at a frame boundary is a clean disconnect (ReadFrame returns
///     false); EOF inside a frame is kMalformed ("truncated frame");
///   * a frame whose payload is not valid JSON is an application-level
///     error: the framing is intact, so the server answers with an error
///     response and keeps the connection.
///
/// The fd must be a socket (reads/writes use recv/send with MSG_NOSIGNAL,
/// so a peer that disappeared surfaces as an error, not SIGPIPE).

#ifndef MAPINV_SERVE_PROTOCOL_H_
#define MAPINV_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "base/status.h"

namespace mapinv {

/// Default cap on a frame payload; a mapping or instance text above this is
/// a client error, not a workload.
inline constexpr uint32_t kDefaultMaxFrameBytes = 16u << 20;

/// \brief Reads one frame into `*out`. Returns false on clean EOF at a
/// frame boundary, true on a full frame; kMalformed on framing violations
/// (zero/oversized declared length, EOF mid-frame), kInternal on socket
/// errors.
Result<bool> ReadFrame(int fd, uint32_t max_bytes, std::string* out);

/// \brief Writes one frame. kInvalidArgument if `payload` exceeds
/// `max_bytes`; kInternal on socket errors (including a vanished peer).
Status WriteFrame(int fd, std::string_view payload,
                  uint32_t max_bytes = kDefaultMaxFrameBytes);

}  // namespace mapinv

#endif  // MAPINV_SERVE_PROTOCOL_H_
