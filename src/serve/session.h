/// \file session.h
/// \brief Named serving sessions: schema + mapping + registered instances
/// held as copy-on-write snapshots.
///
/// A Session is the unit of multi-tenant state in mapinv_serve. It holds:
///
///   * the session's TgdMapping (parsed once at session.open);
///   * named source instances registered by instance.put, each stored as a
///     COW Snapshot() — requests execute against immutable snapshots, so a
///     concurrent instance.put can never tear a running chase;
///   * a memoized inverse (the first invert/maxrec computes it; later
///     requests of the same command are served from the cache until the
///     mapping changes);
///   * lifetime metrics (request counts by outcome, accumulated ExecStats).
///
/// Concurrency contract: the mutex guards only the pointers and counters —
/// request execution happens *outside* the lock on shared_ptr copies, so
/// requests on one session run concurrently, and sessions never share
/// mutable state with each other (isolation is structural, not locked).
/// The process-wide EvalCache stays shared across sessions: its keys embed
/// full renderings (see engine/eval_cache.h), so a hit is always
/// semantically valid no matter which session produced it.

#ifndef MAPINV_SERVE_SESSION_H_
#define MAPINV_SERVE_SESSION_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "base/json.h"
#include "base/status.h"
#include "chase/maintained.h"
#include "data/instance.h"
#include "engine/request.h"
#include "logic/mapping.h"

namespace mapinv {

/// \brief Lifetime counters of one session (mirrored server-wide by the
/// Server). Guarded by the owning Session's mutex.
struct SessionMetrics {
  uint64_t requests = 0;
  uint64_t ok = 0;
  uint64_t errors = 0;
  uint64_t cancelled = 0;
  uint64_t exhausted = 0;
  uint64_t partial = 0;
  uint64_t inverse_cache_hits = 0;
  ExecStatsSnapshot totals;

  Json ToJson() const;
};

/// \brief One named tenant: mapping + instances + memoized inverse.
class Session {
 public:
  explicit Session(std::string name) : name_(std::move(name)) { Touch(); }

  const std::string& name() const { return name_; }

  /// Parses and installs the session mapping (text or gen: spec). Replacing
  /// a mapping drops the registered instances and the memoized inverse —
  /// they were bound to the old schemas.
  Status SetMapping(std::string_view spec);

  /// Parses `text` against the session mapping's source schema and registers
  /// it under `name` (replacing any previous instance of that name).
  Status PutInstance(const std::string& name, std::string_view text);

  std::shared_ptr<const TgdMapping> mapping() const;
  /// The registered instance, or nullptr.
  std::shared_ptr<const Instance> instance(const std::string& name) const;
  std::vector<std::string> InstanceNames() const;

  /// The maintained solution for instance `name`, created on first use
  /// (seeded from the registered snapshot when one exists, empty otherwise).
  /// kInvalidArgument without a session mapping. instance.put on the same
  /// name discards the maintained state — the rows were replaced wholesale,
  /// not appended — and SetMapping discards all of it.
  Result<std::shared_ptr<MaintainedSolution>> MaintainedFor(
      const std::string& name);

  /// The instance.append verb: appends `text`'s facts to `name`'s maintained
  /// source, absorbs them incrementally (ChaseDelta), re-registers the grown
  /// source snapshot so later by-ref requests see the appended rows, and
  /// returns the refreshed target rendering via `rendered`. `appended`
  /// (optional) receives the count of genuinely new source rows.
  Status AppendInstance(const std::string& name, std::string_view text,
                        const ExecutionOptions& options, std::string* rendered,
                        size_t* appended);

  /// Replaces the registered snapshot of `name` (keeps maintained state;
  /// used to publish a maintained solution's grown source).
  void SyncRegisteredSource(const std::string& name, Instance source);

  /// The instance.save verb: writes the registered instance `name` to `path`
  /// as a mapinv snapshot file (see docs/STORAGE.md). kNotFound when absent.
  Status SaveInstance(const std::string& name, const std::string& path) const;

  /// The instance.load verb: reopens a snapshot file and registers it under
  /// `name`, replacing any previous instance of that name (and, like
  /// instance.put, discarding its maintained state). The snapshot's schema
  /// must structurally match the session mapping's source schema — relation
  /// ids are positional, so a reordered or reshaped schema would silently
  /// rebind atoms.
  Status LoadInstance(const std::string& name, const std::string& path);

  /// The memoized inverse for `command` ("invert" or "maxrec"); nullptr on
  /// miss. `result_text` receives the cached rendering on a hit.
  std::shared_ptr<const ReverseMapping> CachedInverse(
      const std::string& command, std::string* result_text);
  void CacheInverse(const std::string& command,
                    std::shared_ptr<const ReverseMapping> inverse,
                    std::string result_text);

  /// Folds one finished request into the session's lifetime metrics.
  void RecordOutcome(const EngineResponse& response);

  SessionMetrics MetricsSnapshot() const;

  /// Idle-eviction clock (--session-ttl-ms): Touch() stamps the monotonic
  /// now; IdleMs() is the time since the last touch. SessionManager::Get
  /// touches on every lookup, so any traffic naming the session keeps it
  /// alive.
  void Touch();
  int64_t IdleMs() const;

 private:
  struct InverseEntry {
    std::shared_ptr<const ReverseMapping> inverse;
    std::string result_text;
  };

  const std::string name_;
  mutable std::mutex mu_;
  std::shared_ptr<const TgdMapping> mapping_;
  std::map<std::string, std::shared_ptr<const Instance>> instances_;
  /// Incrementally maintained solutions, keyed like instances_. The pointees
  /// are internally synchronised; this map only tracks identity.
  std::map<std::string, std::shared_ptr<MaintainedSolution>> maintained_;
  std::map<std::string, InverseEntry> inverses_;  // keyed by command
  SessionMetrics metrics_;
  /// Monotonic milliseconds of the last touch (atomic: touched from lookup
  /// paths without the session mutex).
  std::atomic<int64_t> last_active_ms_{0};
};

/// \brief The server's session directory. Thread-safe.
class SessionManager {
 public:
  explicit SessionManager(size_t max_sessions = 256)
      : max_sessions_(max_sessions) {}

  /// Creates a session; kInvalidArgument if the name is empty or taken,
  /// kResourceExhausted at capacity.
  Result<std::shared_ptr<Session>> Open(const std::string& name);
  /// kNotFound when absent. Touches the session's idle clock.
  Result<std::shared_ptr<Session>> Get(const std::string& name) const;
  Status Close(const std::string& name);
  std::vector<std::string> Names() const;

  /// Drops every session idle for longer than `ttl_ms`; returns how many
  /// were evicted. In-flight requests holding the shared_ptr finish
  /// normally — eviction only unlinks the name. Called by the server's
  /// watchdog when --session-ttl-ms is set.
  size_t EvictIdle(int64_t ttl_ms);

  /// Per-session metrics as a JSON object keyed by session name.
  Json MetricsJson() const;

 private:
  const size_t max_sessions_;
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<Session>> sessions_;
};

}  // namespace mapinv

#endif  // MAPINV_SERVE_SESSION_H_
