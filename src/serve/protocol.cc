#include "serve/protocol.h"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/types.h>

namespace mapinv {
namespace {

// Reads exactly `n` bytes. Returns the byte count actually read: `n` on
// success, less on EOF, or a Status on a socket error.
Result<size_t> ReadFull(int fd, char* buffer, size_t n) {
  size_t done = 0;
  while (done < n) {
    const ssize_t got = ::recv(fd, buffer + done, n - done, 0);
    if (got > 0) {
      done += static_cast<size_t>(got);
      continue;
    }
    if (got == 0) return done;  // EOF
    if (errno == EINTR) continue;
    return Status::Internal(std::string("recv: ") + std::strerror(errno));
  }
  return done;
}

}  // namespace

Result<bool> ReadFrame(int fd, uint32_t max_bytes, std::string* out) {
  unsigned char header[4];
  MAPINV_ASSIGN_OR_RETURN(size_t got,
                          ReadFull(fd, reinterpret_cast<char*>(header), 4));
  if (got == 0) return false;  // clean EOF between frames
  if (got < 4) return Status::Malformed("truncated frame header");
  const uint32_t length = (static_cast<uint32_t>(header[0]) << 24) |
                          (static_cast<uint32_t>(header[1]) << 16) |
                          (static_cast<uint32_t>(header[2]) << 8) |
                          static_cast<uint32_t>(header[3]);
  if (length == 0) return Status::Malformed("zero-length frame");
  if (length > max_bytes) {
    return Status::Malformed("frame of " + std::to_string(length) +
                             " bytes exceeds the " +
                             std::to_string(max_bytes) + "-byte limit");
  }
  out->resize(length);
  MAPINV_ASSIGN_OR_RETURN(got, ReadFull(fd, out->data(), length));
  if (got < length) return Status::Malformed("truncated frame payload");
  return true;
}

Status WriteFrame(int fd, std::string_view payload, uint32_t max_bytes) {
  if (payload.empty() || payload.size() > max_bytes) {
    return Status::InvalidArgument("frame payload of " +
                                   std::to_string(payload.size()) +
                                   " bytes outside (0, " +
                                   std::to_string(max_bytes) + "]");
  }
  const uint32_t length = static_cast<uint32_t>(payload.size());
  unsigned char header[4] = {static_cast<unsigned char>(length >> 24),
                             static_cast<unsigned char>(length >> 16),
                             static_cast<unsigned char>(length >> 8),
                             static_cast<unsigned char>(length)};
  std::string frame(reinterpret_cast<char*>(header), 4);
  frame.append(payload);
  size_t done = 0;
  while (done < frame.size()) {
    const ssize_t put =
        ::send(fd, frame.data() + done, frame.size() - done, MSG_NOSIGNAL);
    if (put >= 0) {
      done += static_cast<size_t>(put);
      continue;
    }
    if (errno == EINTR) continue;
    return Status::Internal(std::string("send: ") + std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace mapinv
