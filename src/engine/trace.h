/// \file trace.h
/// \brief Per-phase tracing: a TraceSpan tree recording where a pipeline run
/// spent its wall time and its ExecStats counters.
///
/// Attach a Tracer via ExecutionOptions::trace and every pipeline entry
/// point (chase_tgds, rewrite, the Invert stages, polyso_inverse, ...) opens
/// a span for its phase. Spans nest: Engine::Invert produces
///
///   invert                      12.43 ms  chase_steps=0 ...
///     maximum_recovery           9.81 ms  ...
///       rewrite                  9.64 ms  ...
///         minimize               2.10 ms  ...
///     eliminate_equalities       2.02 ms  ...
///     eliminate_disjunctions     0.44 ms  ...
///
/// Each span records its *inclusive* wall time and the delta of the
/// execution's ExecStats counters between entry and exit (inclusive of
/// children). Re-entering a phase under the same parent accumulates into
/// the existing child span (bumping `count`), so loops produce a compact,
/// shape-stable tree rather than one node per iteration.
///
/// Tracers are NOT thread-safe: spans are opened and closed only on the
/// pipeline control thread (parallel sections run *inside* a span, never
/// around one). Use one Tracer per logical task, like one Engine.

#ifndef MAPINV_ENGINE_TRACE_H_
#define MAPINV_ENGINE_TRACE_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "base/status.h"
#include "engine/execution_options.h"

namespace mapinv {

/// \brief One node of the phase tree.
struct TraceSpan {
  std::string name;
  /// Times this phase was entered under its parent (loops accumulate).
  uint64_t count = 0;
  /// Inclusive wall time across all entries, in milliseconds.
  double wall_ms = 0.0;
  /// Inclusive ExecStats delta across all entries (all zero when the
  /// execution ran without a stats sink).
  ExecStatsSnapshot stats;
  std::vector<std::unique_ptr<TraceSpan>> children;
};

/// \brief Collects a TraceSpan tree via Begin/End pairs (usually through
/// ScopedTraceSpan). Not thread-safe; see file comment.
class Tracer {
 public:
  Tracer();

  /// Opens (or re-enters) the child span `phase` of the currently open
  /// span. `stats` is the execution's sink, used to snapshot the counter
  /// delta on End(); may be nullptr.
  void Begin(std::string_view phase, const ExecStats* stats);
  /// Closes the innermost open span, folding wall time and stats delta
  /// into it. Unbalanced End() calls are ignored.
  void End();

  /// The synthetic root; its children are the top-level phases. Valid while
  /// the Tracer lives; mutated by Begin/End.
  const TraceSpan& root() const { return root_; }

  /// Drops all recorded spans (open frames too).
  void Reset();

  /// Human-readable tree, one line per span.
  std::string ToText() const;
  /// Machine-readable tree:
  ///   {"name":"invert","count":1,"wall_ms":12.43,
  ///    "stats":{"chase_steps":0,...},"children":[...]}
  /// The root object is named "trace"; a run with no spans renders as
  /// {"name":"trace",...,"children":[]}.
  std::string ToJson() const;

 private:
  struct Frame {
    TraceSpan* span;
    std::chrono::steady_clock::time_point start;
    ExecStatsSnapshot at_entry;
    const ExecStats* stats;
  };

  TraceSpan root_;
  std::vector<Frame> open_;
};

/// \brief RAII span guard: no-op when `options.trace` is null.
///
///   ScopedTraceSpan span(options, "rewrite");
class ScopedTraceSpan {
 public:
  ScopedTraceSpan(const ExecutionOptions& options, std::string_view phase)
      : tracer_(options.trace) {
    if (tracer_ != nullptr) tracer_->Begin(phase, options.stats);
  }
  ~ScopedTraceSpan() {
    if (tracer_ != nullptr) tracer_->End();
  }
  ScopedTraceSpan(const ScopedTraceSpan&) = delete;
  ScopedTraceSpan& operator=(const ScopedTraceSpan&) = delete;

 private:
  Tracer* tracer_;
};

/// \brief The canonical kResourceExhausted error for a pipeline phase:
/// "phase 'rewrite': exceeded deadline_ms = 50". Every limit bail-out goes
/// through this so callers (and tests) can rely on the phase being named.
Status PhaseExhausted(std::string_view phase, std::string_view detail);

/// \brief The canonical kCancelled error for a pipeline phase:
/// "phase 'rewrite': cancelled". Deterministic: no timestamps, no pointers,
/// byte-identical across thread counts and runs.
Status PhaseCancelled(std::string_view phase);

/// \brief The combined interrupt poll used at phase loop heads: reports
/// cancellation first (the more specific cause — a caller cancelling an
/// already-over-budget run should see kCancelled), then the deadline.
/// Returns OK when neither fired. The deadline poll is amortised
/// (ExecDeadline::Expired); the cancel poll is a single relaxed load.
inline Status PollPhaseInterrupt(const ExecutionOptions& options,
                                 const ExecDeadline& deadline,
                                 std::string_view phase) {
  if (CancelRequested(options)) return PhaseCancelled(phase);
  if (deadline.Expired()) {
    return PhaseExhausted(phase, "exceeded deadline_ms = " +
                                     std::to_string(options.deadline_ms));
  }
  return Status::OK();
}

}  // namespace mapinv

#endif  // MAPINV_ENGINE_TRACE_H_
