/// \file thread_pool.h
/// \brief A small work-stealing thread pool.
///
/// Each worker owns a deque: it pushes and pops its own work LIFO (cache
/// locality) and steals FIFO from the other workers when its deque runs dry
/// (oldest task first, the classic Blumofe–Leiserson discipline). External
/// submissions are distributed round-robin. The pool exists so one Engine
/// can fan a model-management request out into many chases and homomorphism
/// searches over shared read-only structures without re-spawning threads.
///
/// Determinism note: the pool never promises an execution *order* — callers
/// that need deterministic results (the parallel chase) write into
/// pre-allocated per-chunk slots and merge in chunk order, which makes the
/// output independent of scheduling.

#ifndef MAPINV_ENGINE_THREAD_POOL_H_
#define MAPINV_ENGINE_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mapinv {

/// \brief Fixed-size work-stealing pool. Submission and ParallelFor are
/// thread-safe; the destructor drains outstanding work.
class ThreadPool {
 public:
  /// Spawns `threads` workers. 0 is allowed: every ParallelFor then runs
  /// inline on the calling thread.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues one task.
  void Submit(std::function<void()> task);

  /// Runs body(0..n-1), blocking until every call returned. The calling
  /// thread participates, so the pool makes progress even with 0 workers.
  /// Items are claimed dynamically (an atomic cursor), so uneven item costs
  /// balance automatically; the caller is responsible for making its output
  /// independent of claiming order.
  void ParallelFor(size_t n, const std::function<void(size_t)>& body);

  int thread_count() const { return static_cast<int>(workers_.size()); }

  /// Process-shared pool, lazily created with hardware_concurrency() - 1
  /// workers (the caller participates in ParallelFor, using the final core).
  /// Used by chase entry points when ExecutionOptions supplies no pool.
  static ThreadPool& Shared();

 private:
  struct Queue {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  void WorkerLoop(size_t worker_index);
  bool TryRunOneTask(size_t preferred_queue);

  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::thread> workers_;
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  std::atomic<size_t> next_queue_{0};
  std::atomic<bool> stopping_{false};
};

}  // namespace mapinv

#endif  // MAPINV_ENGINE_THREAD_POOL_H_
