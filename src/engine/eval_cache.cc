#include "engine/eval_cache.h"

#include "data/instance.h"
#include "engine/execution_options.h"

namespace mapinv {

namespace {
void CountLookup(ExecStats* stats, bool hit) {
  if (stats == nullptr) return;
  auto& counter = hit ? stats->cache_hits : stats->cache_misses;
  counter.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace

EvalCache::EvalCache(size_t capacity) : capacity_(capacity) {}

EvalCache::EntryList::iterator EvalCache::Touch(EntryList::iterator it) {
  lru_.splice(lru_.begin(), lru_, it);
  return lru_.begin();
}

std::optional<bool> EvalCache::GetBool(std::string_view key,
                                       ExecStats* stats) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end() ||
      !std::holds_alternative<bool>(it->second->value)) {
    ++misses_;
    CountLookup(stats, /*hit=*/false);
    return std::nullopt;
  }
  ++hits_;
  CountLookup(stats, /*hit=*/true);
  it->second = Touch(it->second);
  return std::get<bool>(it->second->value);
}

std::shared_ptr<const Instance> EvalCache::GetInstance(std::string_view key,
                                                       ExecStats* stats) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end() ||
      !std::holds_alternative<std::shared_ptr<const Instance>>(
          it->second->value)) {
    ++misses_;
    CountLookup(stats, /*hit=*/false);
    return nullptr;
  }
  ++hits_;
  CountLookup(stats, /*hit=*/true);
  it->second = Touch(it->second);
  return std::get<std::shared_ptr<const Instance>>(it->second->value);
}

void EvalCache::InsertLocked(std::string_view key, Value value) {
  if (capacity_ == 0) return;
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->value = std::move(value);
    it->second = Touch(it->second);
    return;
  }
  EvictDownToLocked(capacity_ - 1);
  lru_.push_front(Entry{std::string(key), std::move(value)});
  index_.emplace(std::string_view(lru_.front().key), lru_.begin());
}

void EvalCache::EvictDownToLocked(size_t capacity) {
  while (lru_.size() > capacity) {
    index_.erase(std::string_view(lru_.back().key));
    lru_.pop_back();
    ++evictions_;
  }
}

void EvalCache::PutBool(std::string_view key, bool value) {
  std::lock_guard<std::mutex> lock(mu_);
  InsertLocked(key, Value(value));
}

void EvalCache::PutInstance(std::string_view key,
                            std::shared_ptr<const Instance> value) {
  std::lock_guard<std::mutex> lock(mu_);
  InsertLocked(key, Value(std::move(value)));
}

void EvalCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  index_.clear();
  lru_.clear();
}

void EvalCache::SetCapacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity;
  EvictDownToLocked(capacity_);
}

EvalCache::Stats EvalCache::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.entries = lru_.size();
  s.capacity = capacity_;
  return s;
}

void EvalCache::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  hits_ = misses_ = evictions_ = 0;
}

EvalCache& GlobalEvalCache() {
  static EvalCache* cache = new EvalCache();
  return *cache;
}

}  // namespace mapinv
