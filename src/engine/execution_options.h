/// \file execution_options.h
/// \brief The unified execution API: ResourceLimits, ExecStats, ExecDeadline
/// and ExecutionOptions.
///
/// Every operation the paper defines — data exchange (§2), certain-answer
/// rewriting (§4.1), the inversion pipeline (§4), PolySOInverse (§5) and the
/// round-trip checks — used to take its own ad-hoc `*Options` struct, each
/// duplicating a subset of the limit knobs. They are all replaced by one
/// ExecutionOptions, which combines:
///
///   * ResourceLimits — every limit knob in one place, shared by all layers;
///   * parallelism    — `threads` plus an optional ThreadPool to run on;
///   * a deadline     — wall-clock budget resolved once at pipeline entry
///                      and polled by every chase, rewrite and inversion
///                      loop (see ExecDeadline);
///   * a stats sink   — ExecStats counting chase steps, homomorphism
///                      backtracks and eval-cache traffic;
///   * a trace sink   — a Tracer recording a per-phase span tree (see
///                      engine/trace.h);
///   * a SymbolContext — engine-scoped fresh-null/fresh-variable generation,
///                      making output reproducible run-to-run.
///
/// ExecutionOptions inherits ResourceLimits, so the historical field names
/// (`options.max_new_facts`, `options.max_worlds`, ...) keep working at
/// every call site.

#ifndef MAPINV_ENGINE_EXECUTION_OPTIONS_H_
#define MAPINV_ENGINE_EXECUTION_OPTIONS_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

#include "base/status.h"

namespace mapinv {

class SymbolContext;
class ThreadPool;
class EvalCache;
class Tracer;

/// \brief Every resource limit of the library in one struct. Each knob turns
/// a potential runaway into a clean kResourceExhausted error; the defaults
/// match the historical per-struct defaults.
struct ResourceLimits {
  /// Maximum number of facts any chase may create.
  size_t max_new_facts = 4u << 20;
  /// Maximum number of worlds a disjunctive chase may track.
  size_t max_worlds = 4096;
  /// Maximum number of (pre-minimisation) disjuncts a rewriting may produce,
  /// and the cap on the conjunctive-product size EliminateDisjunctions may
  /// materialise.
  size_t max_disjuncts = 1u << 20;
  /// Maximum number of rules an SO-tgd composition, a partition expansion
  /// (EliminateEqualities) or PolySOInverse may emit.
  size_t max_rules = 1u << 16;
  /// Maximum frontier width for the partition expansion — the widest allowed
  /// frontier (12 variables) already expands into Bell(12) ≈ 4.2e6
  /// partitions; width 13 would mean Bell(13) ≈ 2.8e7.
  size_t max_frontier_width = 12;
  /// Wall-clock budget in milliseconds, measured from pipeline entry;
  /// 0 means unlimited. The entry point resolves it into one ExecDeadline
  /// that every stage shares (see ExecutionOptions::deadline), and every
  /// chase, rewrite and inversion loop polls it (amortised — see
  /// ExecDeadline::Expired), so a composite call like Engine::Invert is
  /// bounded end to end, not per stage.
  int64_t deadline_ms = 0;
};

/// \brief Plain (non-atomic) copy of ExecStats counters — the unit traded
/// between ExecStats and the trace layer.
struct ExecStatsSnapshot {
  /// True if the producing execution degraded to a partial result (see
  /// ExecutionOptions::on_exhausted). Boolean, not a counter: the trace
  /// layer ORs it across spans instead of summing.
  bool partial = false;
  uint64_t chase_steps = 0;
  uint64_t hom_backtracks = 0;
  uint64_t hom_searches = 0;
  uint64_t hom_plans_compiled = 0;
  uint64_t hom_bucket_candidates = 0;
  uint64_t hom_slot_bindings = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t tuples_arena_bytes = 0;
  uint64_t index_catchup_rows = 0;
  uint64_t worlds_forked = 0;
  uint64_t vector_blocks_scanned = 0;
  uint64_t vector_rows_scanned = 0;
  uint64_t vector_rows_selected = 0;
  uint64_t bulk_rows_appended = 0;
  uint64_t segments_spilled = 0;
  uint64_t segments_faulted = 0;
  uint64_t arena_resident_bytes = 0;
  uint64_t vector_plan_fallbacks = 0;
  uint64_t segment_faultin_retries = 0;
  uint64_t jobs_checkpointed = 0;
  uint64_t worlds_resumed = 0;
  uint64_t checkpoint_bytes = 0;
};

/// \brief Counters an execution can stream into (pass `&stats` via
/// ExecutionOptions::stats). All atomics: one sink may be shared by
/// concurrent workers and by several sequential operations.
struct ExecStats {
  /// Triggers fired by chase engines (a skipped satisfied trigger does not
  /// count).
  std::atomic<uint64_t> chase_steps{0};
  /// Candidate tuples rejected during homomorphism search (the backtrack
  /// count of the hot loop).
  std::atomic<uint64_t> hom_backtracks{0};
  /// Homomorphism enumerations started.
  std::atomic<uint64_t> hom_searches{0};
  /// Join plans compiled by HomSearch (cache misses of the plan table; a
  /// high ratio to hom_searches means rules are not being reused).
  std::atomic<uint64_t> hom_plans_compiled{0};
  /// Candidate tuples drawn from index buckets (or full scans) by the
  /// compiled executor. candidates - backtracks = accepted extensions.
  std::atomic<uint64_t> hom_bucket_candidates{0};
  /// Variable slots written by the compiled executor's bind ops — the flat
  /// array writes that replace per-binding hash-map inserts.
  std::atomic<uint64_t> hom_slot_bindings{0};
  /// EvalCache hits / misses attributable to this execution. Counted at the
  /// cache lookups themselves (EvalCache::GetBool/GetInstance take the
  /// sink), so two concurrent executions never cross-attribute traffic.
  std::atomic<uint64_t> cache_hits{0};
  std::atomic<uint64_t> cache_misses{0};
  /// High-water mark of Instance::ArenaBytes() observed by chase engines at
  /// completion (bytes of flat tuple payload; indexes/dedup excluded).
  /// Updated via max, not sum, so re-running a pipeline stage over the same
  /// output reports the same footprint.
  std::atomic<uint64_t> tuples_arena_bytes{0};
  /// Rows incorporated into instance-owned (position,value) indexes by lazy
  /// catch-up (Instance::IndexFor). Each row is indexed once per store
  /// however many HomSearch objects read it — the regression guard that
  /// HomSearch construction no longer rebuilds buckets.
  std::atomic<uint64_t> index_catchup_rows{0};
  /// Copy-on-write world forks taken by the disjunctive chase engines
  /// (reverse chase and SO-inverse worlds).
  std::atomic<uint64_t> worlds_forked{0};
  /// Candidate blocks pushed through the vectorized executor's check/bind
  /// micro-op pipeline (seed blocks plus expansion flushes; see
  /// eval/vector_plan.h).
  std::atomic<uint64_t> vector_blocks_scanned{0};
  /// Candidate rows entering vectorized blocks. The vectorized counterpart
  /// of hom_bucket_candidates — the two paths count into separate counters,
  /// so either one alone describes the work its path did.
  std::atomic<uint64_t> vector_rows_scanned{0};
  /// Rows surviving a vectorized block's whole op pipeline (the selection
  /// vector's final population). vector_rows_selected / vector_rows_scanned
  /// is the selection density.
  std::atomic<uint64_t> vector_rows_selected{0};
  /// Rows newly inserted through the bulk Instance::AddRows fire path (the
  /// batched counterpart of per-row AddRow inserts).
  std::atomic<uint64_t> bulk_rows_appended{0};
  /// Storage segments evicted to the spill file because an instance exceeded
  /// its memory budget (Instance::SetMemoryBudget). A segment evicted,
  /// faulted back, and evicted again counts twice.
  std::atomic<uint64_t> segments_spilled{0};
  /// Spilled segments faulted back to heap by a read.
  std::atomic<uint64_t> segments_faulted{0};
  /// High-water mark of Instance::ResidentBytes() — the heap-resident subset
  /// of tuples_arena_bytes (spilled and snapshot-mapped segments excluded).
  /// Updated via max like tuples_arena_bytes; this is the quantity
  /// memory_budget_bytes bounds.
  std::atomic<uint64_t> arena_resident_bytes{0};
  /// Vectorized executions routed to the scalar interpreter because the
  /// compiled plan exceeded ExecutionOptions::vector_max_plan_steps. A
  /// nonzero count explains why vector_* counters stay low on a vectorized
  /// run.
  std::atomic<uint64_t> vector_plan_fallbacks{0};
  /// Spill-file reads retried after a transient I/O failure before a segment
  /// fault-in succeeded (or gave up — see Segment::FaultIn). A nonzero count
  /// on a healthy run points at flaky storage under the spill directory.
  std::atomic<uint64_t> segment_faultin_retries{0};
  /// Durable job checkpoints committed (manifest renamed into place) by
  /// checkpointed world enumeration (see src/job/job.h).
  std::atomic<uint64_t> jobs_checkpointed{0};
  /// Worlds restored from checkpoint snapshots instead of being re-derived,
  /// when a run resumed from ExecutionOptions::checkpoint_dir.
  std::atomic<uint64_t> worlds_resumed{0};
  /// Bytes of checkpoint state (world snapshots + manifests) written durably
  /// to the job directory.
  std::atomic<uint64_t> checkpoint_bytes{0};
  /// Set when an execution running with on_exhausted == kPartial hit a
  /// deadline/limit/cancellation and returned the best sound result so far
  /// instead of failing. Sticky across operations sharing the sink until
  /// Reset() — "something in this pipeline was cut short".
  std::atomic<bool> partial{false};

  /// Records a new arena-bytes observation (monotonic max).
  void ObserveArenaBytes(uint64_t bytes) {
    uint64_t seen = tuples_arena_bytes.load(std::memory_order_relaxed);
    while (seen < bytes && !tuples_arena_bytes.compare_exchange_weak(
                               seen, bytes, std::memory_order_relaxed)) {
    }
  }

  /// Records a new resident-bytes observation (monotonic max).
  void ObserveResidentBytes(uint64_t bytes) {
    uint64_t seen = arena_resident_bytes.load(std::memory_order_relaxed);
    while (seen < bytes && !arena_resident_bytes.compare_exchange_weak(
                               seen, bytes, std::memory_order_relaxed)) {
    }
  }

  void Reset() {
    chase_steps = 0;
    hom_backtracks = 0;
    hom_searches = 0;
    hom_plans_compiled = 0;
    hom_bucket_candidates = 0;
    hom_slot_bindings = 0;
    cache_hits = 0;
    cache_misses = 0;
    tuples_arena_bytes = 0;
    index_catchup_rows = 0;
    worlds_forked = 0;
    vector_blocks_scanned = 0;
    vector_rows_scanned = 0;
    vector_rows_selected = 0;
    bulk_rows_appended = 0;
    segments_spilled = 0;
    segments_faulted = 0;
    arena_resident_bytes = 0;
    vector_plan_fallbacks = 0;
    segment_faultin_retries = 0;
    jobs_checkpointed = 0;
    worlds_resumed = 0;
    checkpoint_bytes = 0;
    partial = false;
  }

  ExecStatsSnapshot Snapshot() const {
    ExecStatsSnapshot s;
    s.chase_steps = chase_steps.load(std::memory_order_relaxed);
    s.hom_backtracks = hom_backtracks.load(std::memory_order_relaxed);
    s.hom_searches = hom_searches.load(std::memory_order_relaxed);
    s.hom_plans_compiled = hom_plans_compiled.load(std::memory_order_relaxed);
    s.hom_bucket_candidates =
        hom_bucket_candidates.load(std::memory_order_relaxed);
    s.hom_slot_bindings = hom_slot_bindings.load(std::memory_order_relaxed);
    s.cache_hits = cache_hits.load(std::memory_order_relaxed);
    s.cache_misses = cache_misses.load(std::memory_order_relaxed);
    s.tuples_arena_bytes = tuples_arena_bytes.load(std::memory_order_relaxed);
    s.index_catchup_rows = index_catchup_rows.load(std::memory_order_relaxed);
    s.worlds_forked = worlds_forked.load(std::memory_order_relaxed);
    s.vector_blocks_scanned =
        vector_blocks_scanned.load(std::memory_order_relaxed);
    s.vector_rows_scanned = vector_rows_scanned.load(std::memory_order_relaxed);
    s.vector_rows_selected =
        vector_rows_selected.load(std::memory_order_relaxed);
    s.bulk_rows_appended = bulk_rows_appended.load(std::memory_order_relaxed);
    s.segments_spilled = segments_spilled.load(std::memory_order_relaxed);
    s.segments_faulted = segments_faulted.load(std::memory_order_relaxed);
    s.arena_resident_bytes =
        arena_resident_bytes.load(std::memory_order_relaxed);
    s.vector_plan_fallbacks =
        vector_plan_fallbacks.load(std::memory_order_relaxed);
    s.segment_faultin_retries =
        segment_faultin_retries.load(std::memory_order_relaxed);
    s.jobs_checkpointed = jobs_checkpointed.load(std::memory_order_relaxed);
    s.worlds_resumed = worlds_resumed.load(std::memory_order_relaxed);
    s.checkpoint_bytes = checkpoint_bytes.load(std::memory_order_relaxed);
    s.partial = partial.load(std::memory_order_relaxed);
    return s;
  }

  std::string ToString() const {
    return "chase_steps=" + std::to_string(chase_steps.load()) +
           " hom_searches=" + std::to_string(hom_searches.load()) +
           " hom_backtracks=" + std::to_string(hom_backtracks.load()) +
           " hom_plans_compiled=" + std::to_string(hom_plans_compiled.load()) +
           " hom_bucket_candidates=" +
           std::to_string(hom_bucket_candidates.load()) +
           " hom_slot_bindings=" + std::to_string(hom_slot_bindings.load()) +
           " cache_hits=" + std::to_string(cache_hits.load()) +
           " cache_misses=" + std::to_string(cache_misses.load()) +
           " tuples_arena_bytes=" + std::to_string(tuples_arena_bytes.load()) +
           " index_catchup_rows=" + std::to_string(index_catchup_rows.load()) +
           " worlds_forked=" + std::to_string(worlds_forked.load()) +
           " vector_blocks_scanned=" +
           std::to_string(vector_blocks_scanned.load()) +
           " vector_rows_scanned=" + std::to_string(vector_rows_scanned.load()) +
           " vector_rows_selected=" +
           std::to_string(vector_rows_selected.load()) +
           " bulk_rows_appended=" + std::to_string(bulk_rows_appended.load()) +
           " segments_spilled=" + std::to_string(segments_spilled.load()) +
           " segments_faulted=" + std::to_string(segments_faulted.load()) +
           " arena_resident_bytes=" +
           std::to_string(arena_resident_bytes.load()) +
           " vector_plan_fallbacks=" +
           std::to_string(vector_plan_fallbacks.load()) +
           " segment_faultin_retries=" +
           std::to_string(segment_faultin_retries.load()) +
           " jobs_checkpointed=" + std::to_string(jobs_checkpointed.load()) +
           " worlds_resumed=" + std::to_string(worlds_resumed.load()) +
           " checkpoint_bytes=" + std::to_string(checkpoint_bytes.load()) +
           " partial=" + (partial.load() ? "true" : "false");
  }
};

/// \brief Resolved wall-clock deadline, computed once at pipeline entry and
/// carried (by pointer, via ExecutionOptions::deadline) through every stage
/// so the budget is shared, not restarted per stage.
///
/// Expired() is cheap enough for per-trigger/per-disjunct hot loops: it
/// reads the clock on the first call and then once every kCheckInterval
/// calls (a relaxed atomic counter otherwise), and once expired it stays
/// expired without further clock reads. Thread-safe: CollectTriggers workers
/// poll one shared deadline.
class ExecDeadline {
 public:
  /// Calls between real clock reads. Bounds the overshoot to
  /// kCheckInterval - 1 loop iterations after the budget elapses.
  static constexpr uint32_t kCheckInterval = 64;

  explicit ExecDeadline(int64_t deadline_ms) {
    if (deadline_ms > 0) {
      at_ = std::chrono::steady_clock::now() +
            std::chrono::milliseconds(deadline_ms);
    }
  }

  ExecDeadline(const ExecDeadline& other) : at_(other.at_) {
    expired_.store(other.expired_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  }
  ExecDeadline& operator=(const ExecDeadline&) = delete;

  /// Amortised check for hot loops; may lag the wall clock by up to
  /// kCheckInterval - 1 calls.
  bool Expired() const {
    if (!at_.has_value()) return false;
    if (expired_.load(std::memory_order_relaxed)) return true;
    if (tick_.fetch_add(1, std::memory_order_relaxed) % kCheckInterval != 0) {
      return false;
    }
    return ExpiredNow();
  }

  /// Precise check: always reads the clock (unless already known expired).
  bool ExpiredNow() const {
    if (!at_.has_value()) return false;
    if (expired_.load(std::memory_order_relaxed)) return true;
    if (std::chrono::steady_clock::now() >= *at_) {
      expired_.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

 private:
  std::optional<std::chrono::steady_clock::time_point> at_;
  mutable std::atomic<uint32_t> tick_{0};
  mutable std::atomic<bool> expired_{false};
};

/// \brief Cooperative cancellation flag shared between a running pipeline
/// and a concurrent controller thread.
///
/// The controller calls Cancel(); the pipeline polls Cancelled() at the same
/// sites that poll the deadline and unwinds with kCancelled naming the phase
/// it was in (see PhaseCancelled in engine/trace.h). Cancellation is
/// level-triggered and sticky: once set it stays set until Reset(), so a
/// token belongs to one run (Engine::ResetCancel re-arms between runs).
///
/// A poll is a single relaxed atomic load — cheaper than the deadline's
/// amortised tick (whose 1-in-64 discipline exists to avoid *clock reads*,
/// not atomic ops), so cancellation polls are not themselves amortised.
class CancelToken {
 public:
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool Cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }
  void Reset() { cancelled_.store(false, std::memory_order_relaxed); }

 private:
  std::atomic<bool> cancelled_{false};
};

/// \brief What an execution does when a deadline, resource limit or
/// cancellation strikes mid-run.
enum class OnExhausted {
  /// Fail the whole operation with kResourceExhausted / kCancelled
  /// (historical behaviour; the default).
  kFail,
  /// Return the best *sound* result completed so far, tagged
  /// ExecStats.partial = true. Each procedure degrades only at granularities
  /// that preserve its soundness contract — see docs/ROBUSTNESS.md. Errors
  /// other than exhaustion/cancellation (kInternal, kMalformed, ...) still
  /// fail: partial mode never masks bugs.
  kPartial,
};

/// \brief Options accepted by the chase, rewrite, inversion and round-trip
/// entry points. Inherits every ResourceLimits knob; adds execution policy.
struct ExecutionOptions : ResourceLimits {
  /// If true, fire every trigger without checking whether the conclusion is
  /// already satisfied (the *oblivious* / naive chase). The oblivious chase
  /// gives the canonical instance used for data-exchange equivalence tests;
  /// the standard chase (false) gives smaller universal solutions.
  bool oblivious = false;
  /// Drop rewriting disjuncts subsumed by other disjuncts (containment
  /// test). Chase engines ignore this.
  bool minimize = true;
  /// Degree of parallelism for trigger enumeration in ChaseTgds/ChaseSOTgd.
  /// 1 means sequential. Output is bit-identical for every thread count.
  int threads = 1;
  /// Batch-at-a-time execution: trigger enumeration runs the compiled plan's
  /// check/bind micro-ops over selection vectors of arena blocks, and the
  /// fire loops append whole batches through Instance::AddRows (see
  /// eval/vector_plan.h and docs/ENGINE.md). Output is bit-identical to the
  /// scalar path for every batch size and thread count; the scalar path
  /// (false) is retained as the differential oracle. Stats counters may
  /// differ between the two paths (each path counts into its own counters).
  bool vectorized = true;
  /// Rows per scan/expansion block of the vectorized executor and triggers
  /// per bulk-fire batch. Values below 1 are treated as 1.
  size_t vector_batch = 1024;
  /// Compiled plans longer than this many steps run on the scalar
  /// interpreter even when `vectorized` is set (the vectorized executor's
  /// per-step level state is sized for typical rule bodies; see
  /// eval/vector_plan.h). Each such routing bumps
  /// ExecStats::vector_plan_fallbacks. 0 forces the scalar path for every
  /// plan.
  size_t vector_max_plan_steps = 32;
  /// Memory budget for chase *target* instances, in bytes of heap-resident
  /// tuple payload (Instance::ResidentBytes); 0 means unlimited. When a
  /// mutation finds the instance over budget, cold sealed storage segments
  /// are evicted to a spill file and faulted back on access — output is
  /// bit-identical to an unconstrained run. See docs/STORAGE.md.
  uint64_t memory_budget_bytes = 0;
  /// Directory for the (immediately unlinked) spill file; empty means
  /// $TMPDIR or /tmp.
  std::string spill_dir;
  /// Durable job directory for checkpointed world enumeration
  /// (ChaseReverseWorlds / ChaseSOInverseWorlds and the round trips built on
  /// them). Empty (the default) disables checkpointing. When set, the
  /// enumeration commits its frontier — per-world snapshots plus a journaled
  /// manifest, each via write-temp-fsync-rename — every `checkpoint_every`
  /// triggers, so a killed process can resume to the byte-identical world
  /// set. See docs/JOBS.md.
  std::string checkpoint_dir;
  /// Triggers processed between checkpoint commits; 0 picks the default
  /// (kDefaultCheckpointEvery = 64). Only meaningful with checkpoint_dir.
  size_t checkpoint_every = 0;
  /// Resume from the newest valid checkpoint in checkpoint_dir instead of
  /// starting fresh. An empty or absent job directory starts fresh; a
  /// directory whose every manifest is corrupt is a clean error. Without
  /// `resume`, a checkpoint_dir that already holds a manifest is refused
  /// (kInvalidArgument) so an old job is never silently clobbered.
  bool resume = false;
  /// Stats sink; nullptr disables counting.
  ExecStats* stats = nullptr;
  /// Fresh-symbol scope; nullptr means the process-global context
  /// (historical behaviour). Supplying a fresh context makes null labels
  /// restart from zero, so identical runs produce identical instances.
  SymbolContext* symbols = nullptr;
  /// Pool to run parallel sections on; nullptr makes `threads > 1` use the
  /// lazily created process-shared pool. Engines inject their own.
  ThreadPool* pool = nullptr;
  /// The deadline resolved by an enclosing pipeline stage. Entry points
  /// construct their own ExecDeadline from `deadline_ms` only when this is
  /// null, so a composite operation (Invert, RoundTrip) measures one budget
  /// for all its stages. Use CarriedDeadline() to resolve.
  const ExecDeadline* deadline = nullptr;
  /// Trace sink recording a per-phase span tree (engine/trace.h); nullptr
  /// disables tracing. Spans are opened/closed only on the pipeline control
  /// thread, never inside parallel sections.
  Tracer* trace = nullptr;
  /// Cooperative cancellation token, polled at the same sites as the
  /// deadline; nullptr disables cancellation. Cancellation wins over a
  /// simultaneously expired deadline (the more specific cause).
  const CancelToken* cancel = nullptr;
  /// Degradation policy on deadline/limit/cancellation exhaustion.
  OnExhausted on_exhausted = OnExhausted::kFail;
};

/// \brief True if `options` carries a token that has been cancelled.
inline bool CancelRequested(const ExecutionOptions& options) {
  return options.cancel != nullptr && options.cancel->Cancelled();
}

/// \brief True if `status` is an exhaustion-class error that kPartial mode
/// may degrade into a partial result. Anything else (kInternal, kMalformed,
/// injected faults, ...) must keep failing.
inline bool IsExhaustion(const Status& status) {
  return status.code() == StatusCode::kResourceExhausted ||
         status.code() == StatusCode::kCancelled;
}

/// \brief Records that the result being returned is partial.
inline void MarkPartial(const ExecutionOptions& options) {
  if (options.stats != nullptr) {
    options.stats->partial.store(true, std::memory_order_relaxed);
  }
}

/// \brief Degradation decision for an exhaustion-class `status`: true means
/// "stop here and return the sound prefix" (and the partial flag has been
/// recorded); false means the caller must propagate the error.
inline bool DegradeToPartial(const ExecutionOptions& options,
                             const Status& status) {
  if (options.on_exhausted != OnExhausted::kPartial || !IsExhaustion(status)) {
    return false;
  }
  MarkPartial(options);
  return true;
}

/// \brief Entry-point helper: the deadline carried by `options` if an
/// enclosing stage resolved one, else `fallback` (which the caller
/// constructs locally from `options.deadline_ms`).
inline const ExecDeadline& CarriedDeadline(const ExecutionOptions& options,
                                           const ExecDeadline& fallback) {
  return options.deadline != nullptr ? *options.deadline : fallback;
}

}  // namespace mapinv

#endif  // MAPINV_ENGINE_EXECUTION_OPTIONS_H_
