/// \file execution_options.h
/// \brief The unified execution API: ResourceLimits, ExecStats and
/// ExecutionOptions.
///
/// Every operation the paper defines — data exchange (§2), certain-answer
/// rewriting (§4.1), the inversion pipeline (§4), PolySOInverse (§5) and the
/// round-trip checks — used to take its own ad-hoc `*Options` struct
/// (ChaseOptions, RewriteOptions, ComposeOptions, EliminateEqualitiesOptions,
/// CqMaximumRecoveryOptions). Those five are now thin deprecated aliases of
/// one ExecutionOptions, which combines:
///
///   * ResourceLimits — every limit knob in one place, shared by all layers;
///   * parallelism    — `threads` plus an optional ThreadPool to run on;
///   * a deadline     — wall-clock budget enforced inside the chase loops;
///   * a stats sink   — ExecStats counting chase steps, homomorphism
///                      backtracks and eval-cache traffic;
///   * a SymbolContext — engine-scoped fresh-null/fresh-variable generation,
///                      making output reproducible run-to-run.
///
/// ExecutionOptions inherits ResourceLimits, so the historical field names
/// (`options.max_new_facts`, `options.max_worlds`, ...) keep working at
/// every call site.

#ifndef MAPINV_ENGINE_EXECUTION_OPTIONS_H_
#define MAPINV_ENGINE_EXECUTION_OPTIONS_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

namespace mapinv {

class SymbolContext;
class ThreadPool;
class EvalCache;

/// \brief Every resource limit of the library in one struct. Each knob turns
/// a potential runaway into a clean kResourceExhausted error; the defaults
/// match the historical per-struct defaults.
struct ResourceLimits {
  /// Maximum number of facts any chase may create (was ChaseOptions).
  size_t max_new_facts = 4u << 20;
  /// Maximum number of worlds a disjunctive chase may track (was
  /// ChaseOptions).
  size_t max_worlds = 4096;
  /// Maximum number of (pre-minimisation) disjuncts a rewriting may produce
  /// (was RewriteOptions).
  size_t max_disjuncts = 1u << 20;
  /// Maximum number of rules an SO-tgd composition may emit (was
  /// ComposeOptions).
  size_t max_rules = 1u << 16;
  /// Maximum frontier width for the partition expansion — Bell(13) ≈ 2.7e7
  /// dependencies (was EliminateEqualitiesOptions).
  size_t max_frontier_width = 12;
  /// Wall-clock budget in milliseconds, measured from operation entry;
  /// 0 means unlimited. Enforced at trigger/world/disjunct granularity.
  int64_t deadline_ms = 0;
};

/// \brief Counters an execution can stream into (pass `&stats` via
/// ExecutionOptions::stats). All atomics: one sink may be shared by
/// concurrent workers and by several sequential operations.
struct ExecStats {
  /// Triggers fired by chase engines (a skipped satisfied trigger does not
  /// count).
  std::atomic<uint64_t> chase_steps{0};
  /// Candidate tuples rejected during homomorphism search (the backtrack
  /// count of the hot loop).
  std::atomic<uint64_t> hom_backtracks{0};
  /// Homomorphism enumerations started.
  std::atomic<uint64_t> hom_searches{0};
  /// EvalCache hits / misses attributable to this execution.
  std::atomic<uint64_t> cache_hits{0};
  std::atomic<uint64_t> cache_misses{0};

  void Reset() {
    chase_steps = 0;
    hom_backtracks = 0;
    hom_searches = 0;
    cache_hits = 0;
    cache_misses = 0;
  }

  std::string ToString() const {
    return "chase_steps=" + std::to_string(chase_steps.load()) +
           " hom_searches=" + std::to_string(hom_searches.load()) +
           " hom_backtracks=" + std::to_string(hom_backtracks.load()) +
           " cache_hits=" + std::to_string(cache_hits.load()) +
           " cache_misses=" + std::to_string(cache_misses.load());
  }
};

/// \brief Options accepted by the chase, rewrite, inversion and round-trip
/// entry points. Inherits every ResourceLimits knob; adds execution policy.
struct ExecutionOptions : ResourceLimits {
  /// If true, fire every trigger without checking whether the conclusion is
  /// already satisfied (the *oblivious* / naive chase). The oblivious chase
  /// gives the canonical instance used for data-exchange equivalence tests;
  /// the standard chase (false) gives smaller universal solutions.
  bool oblivious = false;
  /// Drop rewriting disjuncts subsumed by other disjuncts (containment
  /// test). Chase engines ignore this.
  bool minimize = true;
  /// Degree of parallelism for trigger enumeration in ChaseTgds/ChaseSOTgd.
  /// 1 means sequential. Output is bit-identical for every thread count.
  int threads = 1;
  /// Stats sink; nullptr disables counting.
  ExecStats* stats = nullptr;
  /// Fresh-symbol scope; nullptr means the process-global context
  /// (historical behaviour). Supplying a fresh context makes null labels
  /// restart from zero, so identical runs produce identical instances.
  SymbolContext* symbols = nullptr;
  /// Pool to run parallel sections on; nullptr makes `threads > 1` use the
  /// lazily created process-shared pool. Engines inject their own.
  ThreadPool* pool = nullptr;
};

/// \brief Resolved wall-clock deadline, computed once at operation entry.
class ExecDeadline {
 public:
  explicit ExecDeadline(int64_t deadline_ms) {
    if (deadline_ms > 0) {
      at_ = std::chrono::steady_clock::now() +
            std::chrono::milliseconds(deadline_ms);
    }
  }

  bool Expired() const {
    return at_.has_value() && std::chrono::steady_clock::now() >= *at_;
  }

 private:
  std::optional<std::chrono::steady_clock::time_point> at_;
};

}  // namespace mapinv

#endif  // MAPINV_ENGINE_EXECUTION_OPTIONS_H_
