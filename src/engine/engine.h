/// \file engine.h
/// \brief The Engine facade: one object owning the thread pool, the fresh-
/// symbol scope and the stats sink for a sequence of model-management calls.
///
/// The free functions (ChaseTgds, CqMaximumRecovery, RewriteOverSource,
/// RoundTripWorlds, ...) stay the primitive API; an Engine simply calls them
/// with a consistently wired ExecutionOptions:
///
///   * its own SymbolContext, so null labels restart from zero per Engine
///     and identical call sequences produce bit-identical instances;
///   * its own ThreadPool (threads > 1), reused across calls instead of
///     re-spawned;
///   * one ExecStats accumulating across calls — EvalCache lookups take the
///     sink directly, so hits/misses are attributed to the Engine that
///     caused them even when several Engines run concurrently;
///   * optionally a Tracer (set_tracer), giving every call a per-phase
///     TraceSpan tree (see engine/trace.h).
///
/// Typical use:
///
///   Engine engine({.threads = 8});
///   auto target  = engine.Chase(mapping, source);
///   auto inverse = engine.Invert(mapping);
///   auto worlds  = engine.RoundTrip(mapping, *inverse, source);
///   std::cerr << engine.stats().ToString() << "\n";

#ifndef MAPINV_ENGINE_ENGINE_H_
#define MAPINV_ENGINE_ENGINE_H_

#include <memory>
#include <vector>

#include "base/status.h"
#include "base/symbol_context.h"
#include "data/instance.h"
#include "engine/eval_cache.h"
#include "engine/execution_options.h"
#include "engine/request.h"
#include "eval/query_eval.h"
#include "logic/cq.h"
#include "logic/mapping.h"

namespace mapinv {

class ThreadPool;
class Tracer;

/// \brief Construction-time configuration of an Engine.
struct EngineConfig {
  /// Worker parallelism for chase trigger enumeration. 1 = sequential;
  /// 0 = one thread per hardware core.
  int threads = 1;
  /// Resource limits applied to every call made through this Engine.
  ResourceLimits limits;
  /// Wall-clock budget per call (not per Engine); 0 = unlimited. Copied
  /// into limits.deadline_ms for convenience when non-zero.
  int64_t deadline_ms = 0;
  /// What a call does when a resource limit or cancellation fires mid-way:
  /// kFail (default) returns the exhaustion Status; kPartial returns the
  /// best sound result so far with ExecStats.partial set. See
  /// docs/ROBUSTNESS.md for the per-procedure soundness contract.
  OnExhausted on_exhausted = OnExhausted::kFail;
};

/// \brief Facade bundling pool + symbol scope + stats for the full pipeline.
/// Not thread-safe itself (one Engine per logical task); the work it fans
/// out internally is.
class Engine {
 public:
  explicit Engine(EngineConfig config = {});
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Data exchange: canonical universal solution of `source` under
  /// `mapping` (ChaseTgds).
  Result<Instance> Chase(const TgdMapping& mapping, const Instance& source,
                         bool oblivious = false);

  /// Data exchange with a plain SO-tgd mapping (ChaseSOTgd).
  Result<Instance> ChaseSO(const SOTgdMapping& mapping,
                           const Instance& source);

  /// The full Theorem 4.5 inversion pipeline (CqMaximumRecovery): a
  /// CQ-maximum recovery with single conjunctive, equality-free conclusions.
  Result<ReverseMapping> Invert(const TgdMapping& mapping);

  /// Certain-answer rewriting of a target CQ over the source
  /// (RewriteOverSource).
  Result<UnionCq> Rewrite(const TgdMapping& mapping,
                          const ConjunctiveQuery& target_query);

  /// Recovered source worlds of the canonical round trip (RoundTripWorlds).
  Result<std::vector<Instance>> RoundTrip(const TgdMapping& mapping,
                                          const ReverseMapping& reverse,
                                          const Instance& source);

  /// Certain answers of a source query over the round-trip worlds.
  Result<AnswerSet> RoundTripCertain(const TgdMapping& mapping,
                                     const ReverseMapping& reverse,
                                     const Instance& source,
                                     const ConjunctiveQuery& query);

  /// The unified Request/Response entry point (engine/request.h): dispatches
  /// one EngineRequest with this Engine's pool/limits/cancel configuration
  /// and returns the EngineResponse. Both mapinv_cli and mapinv_serve go
  /// through this, so the same request renders byte-identical response JSON
  /// on either transport. The request runs with a fresh SymbolContext and a
  /// fresh stats sink (accumulated into stats() afterwards), so responses
  /// never depend on prior traffic.
  EngineResponse Execute(const EngineRequest& request);

  /// The ExecutionOptions this Engine passes to the free functions — useful
  /// for calling primitives the facade does not wrap.
  ExecutionOptions MakeOptions();

  const ExecStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }

  /// Requests cooperative cancellation of the call in flight (safe from any
  /// thread). The running call returns kCancelled — or, under
  /// EngineConfig::on_exhausted = kPartial, the partial result built so far.
  /// The flag is sticky: call ResetCancel() before the next call.
  void Cancel() { cancel_.Cancel(); }
  void ResetCancel() { cancel_.Reset(); }
  const CancelToken& cancel_token() const { return cancel_; }

  /// Attaches a trace sink: subsequent calls record their phase tree into
  /// it. Pass nullptr to detach. The Tracer must outlive the calls; it is
  /// not owned.
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }
  Tracer* tracer() const { return tracer_; }

  /// The engine's fresh-symbol scope (one per Engine).
  SymbolContext& symbols() { return symbols_; }

  /// The process-wide evaluation cache the engine's calls consult.
  EvalCache& cache() const { return GlobalEvalCache(); }

 private:
  EngineConfig config_;
  SymbolContext symbols_;
  ExecStats stats_;
  CancelToken cancel_;
  std::unique_ptr<ThreadPool> pool_;
  Tracer* tracer_ = nullptr;
};

}  // namespace mapinv

#endif  // MAPINV_ENGINE_ENGINE_H_
