/// \file eval_cache.h
/// \brief Bounded memoisation of CQ-containment and instance-core results.
///
/// CQ containment is re-decided constantly: MinimizeUnionCq is quadratic in
/// the disjunct count and runs inside every rewriting, and
/// CqMaximumRecovery's subsumption pruning calls it once per dependency —
/// frequently on structurally identical disjunct pairs that differ only in
/// variable names. Instance cores are similarly recomputed by the property
/// checkers on repeated canonical instances. The EvalCache memoises both:
///
///   * containment — keyed on a *canonical* rendering of the query pair
///     (variables renamed by first occurrence), so alpha-equivalent pairs
///     share one entry;
///   * cores — keyed on the schema signature plus the instance's
///     deterministic rendering (exact null labels: a core is only replayed
///     onto a bit-identical input).
///
/// The cache is an LRU bounded by entry count; `GlobalEvalCache()` is the
/// process-wide instance consulted by eval/containment.cc and
/// eval/instance_core.cc. Keys are self-contained strings — they embed
/// spellings, not interner ids — so interner growth or reordering can never
/// produce a stale hit. Thread-safe (one mutex; entries are immutable).

#ifndef MAPINV_ENGINE_EVAL_CACHE_H_
#define MAPINV_ENGINE_EVAL_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <variant>

namespace mapinv {

class Instance;
struct ExecStats;

/// \brief Thread-safe bounded LRU cache for evaluation results.
class EvalCache {
 public:
  /// `capacity` bounds the number of entries; 0 disables the cache (every
  /// lookup misses, every insert is dropped).
  explicit EvalCache(size_t capacity = kDefaultCapacity);

  static constexpr size_t kDefaultCapacity = 4096;

  /// Looks up a boolean (containment) entry. When `stats` is non-null the
  /// hit/miss is also counted on that sink — this is how cache traffic gets
  /// attributed to the execution that caused it (each Engine passes its own
  /// ExecStats; concurrent executions never cross-attribute).
  std::optional<bool> GetBool(std::string_view key,
                              ExecStats* stats = nullptr);
  /// Inserts a boolean entry, evicting the least recently used if full.
  void PutBool(std::string_view key, bool value);

  /// Looks up an instance (core) entry; nullptr on miss. `stats` as in
  /// GetBool.
  std::shared_ptr<const Instance> GetInstance(std::string_view key,
                                              ExecStats* stats = nullptr);
  /// Inserts an instance entry.
  void PutInstance(std::string_view key, std::shared_ptr<const Instance> value);

  /// Drops every entry (stats are kept).
  void Clear();
  /// Rebounds the cache, evicting down to the new capacity. 0 disables.
  void SetCapacity(size_t capacity);

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    size_t entries = 0;
    size_t capacity = 0;
  };
  Stats GetStats() const;
  /// Resets hit/miss/eviction counters (entries stay).
  void ResetStats();

 private:
  using Value = std::variant<bool, std::shared_ptr<const Instance>>;
  struct Entry {
    std::string key;
    Value value;
  };
  using EntryList = std::list<Entry>;

  // Callers hold `mu_`.
  EntryList::iterator Touch(EntryList::iterator it);
  void InsertLocked(std::string_view key, Value value);
  void EvictDownToLocked(size_t capacity);

  mutable std::mutex mu_;
  size_t capacity_;
  EntryList lru_;  // front = most recent
  std::unordered_map<std::string_view, EntryList::iterator> index_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

/// \brief The process-wide cache consulted by CqContainedIn,
/// DisjunctContainedIn and CoreOfInstance.
EvalCache& GlobalEvalCache();

}  // namespace mapinv

#endif  // MAPINV_ENGINE_EVAL_CACHE_H_
