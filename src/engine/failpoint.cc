#include "engine/failpoint.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>

#include <algorithm>
#include <mutex>

namespace mapinv {

namespace {

// splitmix64: the decision stream for FailPointSpec::kRandom. A pure
// function of (seed, hit index), so armed-random runs replay exactly.
uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

FailPoint::FailPoint(const char* name) : name_(name) {
  FailPointRegistry::Global().Register(this);
}

Status FailPoint::Trip() {
  FailPointSpec spec;
  uint64_t hit = 0;
  {
    std::lock_guard<std::mutex> lock(FailPointRegistry::Global().mu_);
    // Re-check under the lock: a concurrent Deactivate may have disarmed us
    // between the fast-path load and here.
    if (!armed_.load(std::memory_order_relaxed)) return Status::OK();
    spec = spec_;
    hit = hits_.fetch_add(1, std::memory_order_relaxed) + 1;  // 1-based
  }
  bool fail = false;
  switch (spec.mode) {
    case FailPointSpec::Mode::kCount:
      break;
    case FailPointSpec::Mode::kAlways:
      fail = true;
      break;
    case FailPointSpec::Mode::kNth:
      fail = hit == spec.nth;
      break;
    case FailPointSpec::Mode::kRandom: {
      // Top 53 bits as a uniform double in [0, 1).
      const double u =
          static_cast<double>(SplitMix64(spec.seed ^ hit) >> 11) * 0x1.0p-53;
      fail = u < spec.rate;
      break;
    }
    case FailPointSpec::Mode::kAbortProcess:
      if (hit == spec.nth) {
        // Simulated SIGKILL: no unwinding, no atexit, no flushing — the
        // process state on disk must be whatever was durably committed
        // before this instant. The message goes to the (unbuffered) stderr
        // fd directly so crash-matrix logs name the site.
        std::fprintf(stderr, "mapinv: failpoint '%s': aborting process (hit %llu)\n",
                     name_, static_cast<unsigned long long>(hit));
        std::raise(SIGKILL);
        std::_Exit(137);  // unreachable unless SIGKILL is somehow blocked
      }
      break;
  }
  if (!fail) return Status::OK();
  trips_.fetch_add(1, std::memory_order_relaxed);
  return Status(spec.code, "failpoint '" + std::string(name_) +
                               "': injected failure");
}

FailPointRegistry& FailPointRegistry::Global() {
  static FailPointRegistry* registry = new FailPointRegistry();
  return *registry;
}

void FailPointRegistry::Register(FailPoint* site) {
  std::lock_guard<std::mutex> lock(mu_);
  sites_.push_back(site);
}

Status FailPointRegistry::Activate(std::string_view name,
                                   const FailPointSpec& spec) {
  if (spec.code == StatusCode::kOk) {
    return Status::InvalidArgument(
        "failpoint spec: injected code must be an error code");
  }
  if ((spec.mode == FailPointSpec::Mode::kNth ||
       spec.mode == FailPointSpec::Mode::kAbortProcess) &&
      spec.nth == 0) {
    return Status::InvalidArgument("failpoint spec: nth is 1-based");
  }
  if (spec.mode == FailPointSpec::Mode::kRandom &&
      !(spec.rate >= 0.0 && spec.rate <= 1.0)) {
    return Status::InvalidArgument("failpoint spec: rate must be in [0, 1]");
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (FailPoint* site : sites_) {
    if (site->name_ == name) {
      site->spec_ = spec;
      site->hits_.store(0, std::memory_order_relaxed);
      site->trips_.store(0, std::memory_order_relaxed);
      site->armed_.store(true, std::memory_order_relaxed);
      return Status::OK();
    }
  }
  return Status::NotFound("no failpoint named '" + std::string(name) + "'");
}

Status FailPointRegistry::Deactivate(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (FailPoint* site : sites_) {
    if (site->name_ == name) {
      site->armed_.store(false, std::memory_order_relaxed);
      return Status::OK();
    }
  }
  return Status::NotFound("no failpoint named '" + std::string(name) + "'");
}

void FailPointRegistry::DeactivateAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (FailPoint* site : sites_) {
    site->armed_.store(false, std::memory_order_relaxed);
  }
}

std::vector<std::string> FailPointRegistry::SiteNames() const {
  std::vector<std::string> names;
  {
    std::lock_guard<std::mutex> lock(mu_);
    names.reserve(sites_.size());
    for (const FailPoint* site : sites_) names.emplace_back(site->name_);
  }
  std::sort(names.begin(), names.end());
  return names;
}

FailPoint* FailPointRegistry::Find(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (FailPoint* site : sites_) {
    if (site->name_ == name) return site;
  }
  return nullptr;
}

}  // namespace mapinv
