/// \file request.h
/// \brief The unified Request/Response engine API.
///
/// Historically every transport called a different per-procedure entry point
/// (CqMaximumRecovery, ChaseTgds, RewriteOverSource, ...) with its own
/// argument plumbing; the CLI grew one dispatch tree and a serving layer
/// would have grown a second. This header replaces that boundary with one
/// value pair:
///
///   * EngineRequest  — a command name plus inline payload texts (mapping,
///     instance, query, ...), optional pre-bound payload objects (how a
///     serving session injects its held snapshots without re-parsing), and
///     per-request overrides of the execution knobs (deadline, limits,
///     threads, on_exhausted);
///   * EngineResponse — a Status, the rendered result text (byte-identical
///     to what mapinv_cli prints), a result-kind tag, and the request's own
///     ExecStatsSnapshot with the partial flag.
///
/// ExecuteRequest(request, base) is the single entry point: `base` carries
/// the transport's standing configuration (pool, thread budget, default
/// limits, cancel token, trace sink) and the request's overrides are applied
/// on top. Both mapinv_cli and mapinv_serve are thin transports over this
/// function, so the same request produces byte-identical response JSON
/// (ResponseToJson) no matter which transport carried it.
///
/// Determinism contract: every request executes with a fresh SymbolContext
/// and a fresh ExecStats sink, so a response depends only on the request and
/// the base limits — never on what ran before it on the same engine or
/// session. (The request's stats are additionally accumulated into
/// base.stats when set, for lifetime metrics.)
///
/// The engine never touches the filesystem: transports resolve file
/// arguments to texts first. A mapping text may also be a `gen:` generator
/// spec (gen:exp:N,K, gen:chain:M, gen:copy:N,A, gen:proj:N), resolved by
/// LoadMappingSpec.

#ifndef MAPINV_ENGINE_REQUEST_H_
#define MAPINV_ENGINE_REQUEST_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "base/json.h"
#include "base/status.h"
#include "data/instance.h"
#include "engine/execution_options.h"
#include "logic/mapping.h"

namespace mapinv {

class MaintainedSolution;

/// \brief Per-request overrides of the execution knobs. Unset fields inherit
/// the transport's base ExecutionOptions; `threads` may lower but never
/// raise the transport's budget.
struct RequestOptions {
  std::optional<uint64_t> max_facts;
  std::optional<uint64_t> max_worlds;
  std::optional<uint64_t> max_disjuncts;
  std::optional<uint64_t> max_rules;
  std::optional<int64_t> deadline_ms;
  std::optional<int> threads;
  std::optional<bool> oblivious;
  std::optional<bool> minimize;
  std::optional<OnExhausted> on_exhausted;
  /// Spill-to-disk: memory budget (bytes of heap-resident tuple payload) for
  /// chase targets, and the spill-file directory. 0 budget = unlimited.
  std::optional<uint64_t> memory_budget_bytes;
  std::optional<std::string> spill_dir;
  /// Vectorized-executor plan-size ceiling (ExecutionOptions::
  /// vector_max_plan_steps); 0 forces the scalar path for every plan.
  std::optional<uint64_t> vector_max_plan_steps;
  /// Durable-job knobs (ExecutionOptions::checkpoint_dir/checkpoint_every/
  /// resume): the documented carve-out to "the engine never touches the
  /// filesystem" — a checkpoint directory is the *product* of a durable job,
  /// named by the caller, not a payload the engine resolves.
  std::optional<std::string> checkpoint_dir;
  std::optional<uint64_t> checkpoint_every;
  std::optional<bool> resume;
};

/// \brief One engine command. Compute commands: invert, maxrec, polyso,
/// rewrite, exchange, exchange-delta, roundtrip, so-invert, compose, check,
/// core, ping. (Serving adds session.* / instance.put / instance.append /
/// metrics / server.stop on top; those never reach ExecuteRequest.)
struct EngineRequest {
  /// Client correlation id, echoed verbatim in the response.
  int64_t id = 0;
  std::string command;
  /// Serving-session name; opaque to the engine (the serving layer resolves
  /// it into bound payloads before calling ExecuteRequest).
  std::string session;

  // Inline payload texts. `mapping` is tgd-mapping text or a gen: spec
  // (SO-tgd text for so-invert); `mapping2` is compose's second mapping.
  std::string mapping;
  std::string mapping2;
  std::string instance;
  /// exchange-delta's appended source rows (instance text against the source
  /// schema). Absorbed incrementally on top of `instance` / the bound
  /// maintained solution; may be empty ("refresh only").
  std::string delta;
  std::string query;
  std::string reverse;
  /// Serving-layer fields: the name of a session-held instance to use in
  /// place of inline `instance` text, and the name under which instance.put
  /// registers its payload.
  std::string instance_ref;
  std::string name;
  /// Filesystem path for the serving snapshot verbs (instance.save /
  /// instance.load). Those verbs are handled by the transport — the engine
  /// itself never touches the filesystem.
  std::string path;
  /// Serving job verbs (job.start / job.resume): the engine command the
  /// background job executes. The job's payloads and options ride in the
  /// ordinary fields of the same request; `command` stays the verb.
  std::string run;

  // Pre-bound payloads (take precedence over the corresponding texts).
  std::shared_ptr<const TgdMapping> bound_mapping;
  std::shared_ptr<const Instance> bound_instance;
  std::shared_ptr<const ReverseMapping> bound_reverse;
  /// exchange-delta against a session-held maintained solution: the serving
  /// layer binds it (mutable — the command appends and refreshes it); when
  /// null, exchange-delta builds a request-local one from `instance`, which
  /// keeps the sessionless path on the same incremental machinery.
  std::shared_ptr<MaintainedSolution> bound_maintained;

  RequestOptions options;
};

/// \brief What kind of artifact EngineResponse::result renders. kCheckViolation
/// distinguishes "the check ran and found a counterexample" (CLI exit 2)
/// from an execution error.
enum class ResultKind {
  kNone,            ///< errors, ping
  kReverseMapping,  ///< invert, maxrec
  kSOMapping,       ///< compose
  kSOInverse,       ///< polyso, so-invert
  kUnionCq,         ///< rewrite
  kInstance,        ///< exchange, core
  kWorlds,          ///< roundtrip (target + recovered worlds)
  kCheckOk,         ///< check: sound on this instance
  kCheckViolation,  ///< check: counterexample found
  kText,            ///< ping/metrics-style plain payloads
};

const char* ResultKindName(ResultKind kind);

/// \brief The engine's answer to one EngineRequest.
struct EngineResponse {
  /// EngineRequest::id, echoed.
  int64_t id = 0;
  /// OK for a computed result (including a check violation); otherwise the
  /// failure, with kInvalidArgument/kMalformed for bad requests and
  /// kResourceExhausted/kCancelled for blown budgets.
  Status status;
  ResultKind kind = ResultKind::kNone;
  /// Rendered result — exactly the bytes mapinv_cli writes to stdout for
  /// this command.
  std::string result;
  /// This request's own counters (fresh sink per request).
  ExecStatsSnapshot stats;
  /// Convenience mirror of stats.partial.
  bool partial = false;
  /// For invert/maxrec: the computed recovery as an object, so a serving
  /// session can memoize it (and feed it back as bound_reverse) without
  /// re-parsing the rendered text. Never wire-carried.
  std::shared_ptr<const ReverseMapping> reverse_artifact;
  /// For instance-producing commands (exchange, exchange-delta, core): the
  /// computed instance as an object, so a transport can persist it with
  /// Instance::Save (the CLI's --save-instance) without re-parsing the
  /// rendered text. Never wire-carried.
  std::shared_ptr<const Instance> instance_artifact;
};

/// \brief Executes one request. `base` is the transport's standing
/// ExecutionOptions (pool/threads/limits/cancel/trace/on_exhausted defaults);
/// request options override it. Never throws; failures come back inside the
/// response's status.
EngineResponse ExecuteRequest(const EngineRequest& request,
                              const ExecutionOptions& base);

/// \brief Resolves a mapping payload: `gen:`-spec or tgd-mapping text.
Result<TgdMapping> LoadMappingSpec(std::string_view spec);

/// \brief True if `command` is a compute command ExecuteRequest understands.
bool IsEngineCommand(std::string_view command);

// --- wire representation ---------------------------------------------------

/// \brief Parses the protocol JSON object into an EngineRequest
/// (kMalformed/kInvalidArgument on schema violations). Bound payloads are
/// never wire-carried; they stay null.
Result<EngineRequest> EngineRequestFromJson(const Json& json);

/// \brief Renders a request to its protocol JSON (inverse of FromJson for
/// wire-carried fields).
Json EngineRequestToJson(const EngineRequest& request);

/// \brief Renders stats in the canonical field order shared by the CLI's
/// --stats-json and the server's response frames.
Json StatsToJson(const ExecStatsSnapshot& stats);

/// \brief Canonical response document. Deterministic: two transports
/// executing the same request render byte-identical bytes via
/// Json::Serialize.
Json ResponseToJson(const EngineResponse& response);

}  // namespace mapinv

#endif  // MAPINV_ENGINE_REQUEST_H_
