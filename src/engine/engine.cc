#include "engine/engine.h"

#include <thread>
#include <utility>

#include "chase/chase_so.h"
#include "chase/chase_tgd.h"
#include "chase/round_trip.h"
#include "engine/thread_pool.h"
#include "engine/trace.h"
#include "inversion/cq_maximum_recovery.h"
#include "rewrite/rewrite.h"

namespace mapinv {

Engine::Engine(EngineConfig config) : config_(config) {
  if (config_.threads == 0) {
    unsigned hw = std::thread::hardware_concurrency();
    config_.threads = hw > 0 ? static_cast<int>(hw) : 1;
  }
  if (config_.threads < 1) config_.threads = 1;
  if (config_.deadline_ms > 0) config_.limits.deadline_ms = config_.deadline_ms;
  if (config_.threads > 1) {
    // The calling thread participates in every ParallelFor, so the pool
    // needs one worker fewer than the requested parallelism.
    pool_ = std::make_unique<ThreadPool>(config_.threads - 1);
  }
}

Engine::~Engine() = default;

ExecutionOptions Engine::MakeOptions() {
  ExecutionOptions options;
  static_cast<ResourceLimits&>(options) = config_.limits;
  options.threads = config_.threads;
  options.pool = pool_.get();
  options.symbols = &symbols_;
  options.stats = &stats_;
  options.trace = tracer_;
  options.cancel = &cancel_;
  options.on_exhausted = config_.on_exhausted;
  return options;
}

Result<Instance> Engine::Chase(const TgdMapping& mapping,
                               const Instance& source, bool oblivious) {
  ExecutionOptions options = MakeOptions();
  options.oblivious = oblivious;
  return ChaseTgds(mapping, source, options);
}

Result<Instance> Engine::ChaseSO(const SOTgdMapping& mapping,
                                 const Instance& source) {
  return ChaseSOTgd(mapping, source, MakeOptions());
}

Result<ReverseMapping> Engine::Invert(const TgdMapping& mapping) {
  return CqMaximumRecovery(mapping, MakeOptions());
}

Result<UnionCq> Engine::Rewrite(const TgdMapping& mapping,
                                const ConjunctiveQuery& target_query) {
  return RewriteOverSource(mapping, target_query, MakeOptions());
}

Result<std::vector<Instance>> Engine::RoundTrip(const TgdMapping& mapping,
                                                const ReverseMapping& reverse,
                                                const Instance& source) {
  return RoundTripWorlds(mapping, reverse, source, MakeOptions());
}

EngineResponse Engine::Execute(const EngineRequest& request) {
  return ExecuteRequest(request, MakeOptions());
}

Result<AnswerSet> Engine::RoundTripCertain(const TgdMapping& mapping,
                                           const ReverseMapping& reverse,
                                           const Instance& source,
                                           const ConjunctiveQuery& query) {
  // Qualified: the member function hides the free RoundTripCertain.
  return ::mapinv::RoundTripCertain(mapping, reverse, source, query,
                                    MakeOptions());
}

}  // namespace mapinv
