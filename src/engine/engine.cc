#include "engine/engine.h"

#include <thread>
#include <utility>

#include "chase/chase_so.h"
#include "chase/chase_tgd.h"
#include "chase/round_trip.h"
#include "engine/thread_pool.h"
#include "inversion/cq_maximum_recovery.h"
#include "rewrite/rewrite.h"

namespace mapinv {

Engine::Engine(EngineConfig config) : config_(config) {
  if (config_.threads == 0) {
    unsigned hw = std::thread::hardware_concurrency();
    config_.threads = hw > 0 ? static_cast<int>(hw) : 1;
  }
  if (config_.threads < 1) config_.threads = 1;
  if (config_.deadline_ms > 0) config_.limits.deadline_ms = config_.deadline_ms;
  if (config_.threads > 1) {
    // The calling thread participates in every ParallelFor, so the pool
    // needs one worker fewer than the requested parallelism.
    pool_ = std::make_unique<ThreadPool>(config_.threads - 1);
  }
}

Engine::~Engine() = default;

ExecutionOptions Engine::MakeOptions() {
  ExecutionOptions options;
  static_cast<ResourceLimits&>(options) = config_.limits;
  options.threads = config_.threads;
  options.pool = pool_.get();
  options.symbols = &symbols_;
  options.stats = &stats_;
  return options;
}

template <typename Fn>
auto Engine::WithCacheStats(Fn&& body) -> decltype(body()) {
  const EvalCache::Stats before = cache().GetStats();
  auto result = body();
  const EvalCache::Stats after = cache().GetStats();
  stats_.cache_hits.fetch_add(after.hits - before.hits,
                              std::memory_order_relaxed);
  stats_.cache_misses.fetch_add(after.misses - before.misses,
                                std::memory_order_relaxed);
  return result;
}

Result<Instance> Engine::Chase(const TgdMapping& mapping,
                               const Instance& source, bool oblivious) {
  ExecutionOptions options = MakeOptions();
  options.oblivious = oblivious;
  return WithCacheStats([&] { return ChaseTgds(mapping, source, options); });
}

Result<Instance> Engine::ChaseSO(const SOTgdMapping& mapping,
                                 const Instance& source) {
  ExecutionOptions options = MakeOptions();
  return WithCacheStats([&] { return ChaseSOTgd(mapping, source, options); });
}

Result<ReverseMapping> Engine::Invert(const TgdMapping& mapping) {
  ExecutionOptions options = MakeOptions();
  return WithCacheStats(
      [&] { return CqMaximumRecovery(mapping, options); });
}

Result<UnionCq> Engine::Rewrite(const TgdMapping& mapping,
                                const ConjunctiveQuery& target_query) {
  ExecutionOptions options = MakeOptions();
  return WithCacheStats(
      [&] { return RewriteOverSource(mapping, target_query, options); });
}

Result<std::vector<Instance>> Engine::RoundTrip(const TgdMapping& mapping,
                                                const ReverseMapping& reverse,
                                                const Instance& source) {
  ExecutionOptions options = MakeOptions();
  return WithCacheStats(
      [&] { return RoundTripWorlds(mapping, reverse, source, options); });
}

Result<AnswerSet> Engine::RoundTripCertain(const TgdMapping& mapping,
                                           const ReverseMapping& reverse,
                                           const Instance& source,
                                           const ConjunctiveQuery& query) {
  ExecutionOptions options = MakeOptions();
  return WithCacheStats([&] {
    // Qualified: the member function hides the free RoundTripCertain.
    return ::mapinv::RoundTripCertain(mapping, reverse, source, query,
                                      options);
  });
}

}  // namespace mapinv
