#include "engine/thread_pool.h"

#include <atomic>
#include <chrono>
#include <memory>

namespace mapinv {

ThreadPool::ThreadPool(int threads) {
  if (threads < 0) threads = 0;
  queues_.reserve(threads);
  for (int i = 0; i < threads; ++i) {
    queues_.push_back(std::make_unique<Queue>());
  }
  workers_.reserve(threads);
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(static_cast<size_t>(i)); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    stopping_.store(true, std::memory_order_relaxed);
  }
  wake_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  if (queues_.empty()) {
    task();
    return;
  }
  size_t q = next_queue_.fetch_add(1, std::memory_order_relaxed) %
             queues_.size();
  {
    std::lock_guard<std::mutex> lock(queues_[q]->mu);
    queues_[q]->tasks.push_back(std::move(task));
  }
  wake_cv_.notify_one();
}

bool ThreadPool::TryRunOneTask(size_t preferred_queue) {
  const size_t n = queues_.size();
  for (size_t attempt = 0; attempt < n; ++attempt) {
    size_t q = (preferred_queue + attempt) % n;
    std::function<void()> task;
    {
      std::lock_guard<std::mutex> lock(queues_[q]->mu);
      if (queues_[q]->tasks.empty()) continue;
      if (attempt == 0) {
        // Own queue: LIFO for locality.
        task = std::move(queues_[q]->tasks.back());
        queues_[q]->tasks.pop_back();
      } else {
        // Steal: FIFO, take the oldest (likely largest) task.
        task = std::move(queues_[q]->tasks.front());
        queues_[q]->tasks.pop_front();
      }
    }
    task();
    return true;
  }
  return false;
}

void ThreadPool::WorkerLoop(size_t worker_index) {
  while (true) {
    if (TryRunOneTask(worker_index)) continue;
    std::unique_lock<std::mutex> lock(wake_mu_);
    // Re-check for work under the wake lock to avoid a lost notify, and
    // drain every queued task before honouring a stop request.
    bool any = false;
    for (const auto& q : queues_) {
      std::lock_guard<std::mutex> qlock(q->mu);
      if (!q->tasks.empty()) {
        any = true;
        break;
      }
    }
    if (any) continue;
    if (stopping_.load(std::memory_order_relaxed)) return;
    wake_cv_.wait(lock);
  }
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t)>& body) {
  if (n == 0) return;
  if (queues_.empty() || n == 1) {
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }
  struct ForState {
    std::atomic<size_t> cursor{0};
    std::mutex mu;
    std::condition_variable cv;
    size_t helpers_done = 0;
  };
  auto state = std::make_shared<ForState>();

  auto drain = [state, n, &body]() {
    size_t i;
    while ((i = state->cursor.fetch_add(1, std::memory_order_relaxed)) < n) {
      body(i);
    }
  };

  // One helper task per worker; every helper drains the shared cursor, so
  // uneven item costs balance dynamically. ParallelFor blocks until all
  // helpers finished, which keeps the by-reference `body` capture valid.
  const size_t helpers = std::min(n, workers_.size());
  for (size_t h = 0; h < helpers; ++h) {
    Submit([state, drain]() {
      drain();
      std::lock_guard<std::mutex> lock(state->mu);
      ++state->helpers_done;
      state->cv.notify_all();
    });
  }
  drain();  // the caller participates too
  // Help run queued tasks while waiting: a nested ParallelFor queues its
  // helpers behind the outer one's, and if every thread blocked here none
  // of them would ever run. The short timed wait re-polls the queues, so
  // some waiter always makes progress.
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(state->mu);
      if (state->helpers_done == helpers) return;
    }
    if (!TryRunOneTask(0)) {
      std::unique_lock<std::mutex> lock(state->mu);
      state->cv.wait_for(lock, std::chrono::milliseconds(1),
                         [&] { return state->helpers_done == helpers; });
    }
  }
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool* pool = [] {
    unsigned hw = std::thread::hardware_concurrency();
    int workers = hw > 1 ? static_cast<int>(hw) - 1 : 1;
    return new ThreadPool(workers);
  }();
  return *pool;
}

}  // namespace mapinv
