#include "engine/parallel_chase.h"

#include <algorithm>
#include <atomic>

#include "engine/failpoint.h"
#include "engine/thread_pool.h"
#include "engine/trace.h"
#include "eval/hom_plan.h"

namespace mapinv {

namespace {

FailPoint fp_collect_entry("collect_triggers/entry");
FailPoint fp_collect_chunk("collect_triggers/chunk");

// Binds `atom`'s terms against `tuple` into `out` (starting empty), applying
// the same eager checks ForEachHom performs: constants must match, repeated
// variables must agree, constant-constrained variables reject nulls, and
// fully bound inequalities must hold. Returns false if the tuple is not a
// match for the atom.
bool BindCandidate(const Atom& atom, RowView tuple,
                   const HomConstraints& constraints, Assignment* out) {
  for (size_t p = 0; p < atom.terms.size(); ++p) {
    const Term& t = atom.terms[p];
    if (t.is_constant()) {
      if (!(t.value() == tuple[p])) return false;
    } else {
      auto it = out->find(t.var());
      if (it == out->end()) {
        if (constraints.constant_vars.contains(t.var()) &&
            !tuple[p].is_constant()) {
          return false;
        }
        out->emplace(t.var(), tuple[p]);
      } else if (!(it->second == tuple[p])) {
        return false;
      }
    }
  }
  for (const VarPair& ne : constraints.inequalities) {
    auto a = out->find(ne.first);
    auto b = out->find(ne.second);
    if (a != out->end() && b != out->end() && a->second == b->second) {
      return false;
    }
  }
  return true;
}

}  // namespace

Result<std::vector<Assignment>> CollectTriggers(
    const HomSearch& search, const Instance& instance,
    const std::vector<Atom>& premise, const HomConstraints& constraints,
    const ExecutionOptions& options, const ExecDeadline& deadline) {
  // Validates every premise atom and builds the indexes up front, so the
  // parallel section below only reads shared state.
  MAPINV_FAILPOINT(fp_collect_entry);
  MAPINV_RETURN_NOT_OK(search.Prewarm(premise));

  if (premise.empty()) {
    // ForEachHom reports the empty assignment once (constraints over an
    // empty assignment hold trivially).
    return std::vector<Assignment>{Assignment{}};
  }

  // Initial atom: the plan compiler's first-step rule under the empty
  // assignment — most constant terms, ties to the smaller relation, then to
  // the earlier atom. Using the same rule keeps the chunked enumeration in
  // the exact order the compiled full-premise plan would produce.
  size_t best_index = 0;
  int best_bound = -1;
  size_t best_cardinality = 0;
  for (size_t i = 0; i < premise.size(); ++i) {
    int bound = 0;
    for (const Term& t : premise[i].terms) {
      if (t.is_constant()) ++bound;
    }
    MAPINV_ASSIGN_OR_RETURN(
        RelationId id,
        instance.schema().Require(RelationText(premise[i].relation)));
    const size_t cardinality = instance.NumRows(id);
    if (bound > best_bound ||
        (bound == best_bound && cardinality < best_cardinality)) {
      best_bound = bound;
      best_cardinality = cardinality;
      best_index = i;
    }
  }
  const Atom& first = premise[best_index];
  std::vector<Atom> remaining;
  remaining.reserve(premise.size() - 1);
  for (size_t i = 0; i < premise.size(); ++i) {
    if (i != best_index) remaining.push_back(premise[i]);
  }

  MAPINV_ASSIGN_OR_RETURN(
      RelationId rel, instance.schema().Require(RelationText(first.relation)));
  const size_t n = instance.NumRows(rel);
  if (n == 0) return std::vector<Assignment>{};

  // Compile the remaining-premise plan once, before the fan-out, so worker
  // threads execute a shared immutable plan instead of racing through the
  // plan cache. The plan's bound-variable set is exactly what BindCandidate
  // assigns: the first atom's distinct variables.
  std::vector<VarId> first_vars;
  for (const Term& t : first.terms) {
    if (t.is_variable()) first_vars.push_back(t.var());
  }
  MAPINV_ASSIGN_OR_RETURN(
      std::shared_ptr<const HomPlan> remaining_plan,
      search.GetPlanForVars(remaining, constraints, std::move(first_vars)));

  int threads = options.threads < 1 ? 1 : options.threads;
  ThreadPool* pool = nullptr;
  if (threads > 1) {
    pool = options.pool != nullptr ? options.pool : &ThreadPool::Shared();
  }

  // One output slot per contiguous chunk of candidate tuples; slots merge in
  // chunk order, so the trigger list is independent of scheduling — and of
  // the chunk count itself, which lets threads==1 share this exact path.
  const size_t chunk_count =
      std::min(n, static_cast<size_t>(threads) * size_t{8});
  const size_t chunk_size = (n + chunk_count - 1) / chunk_count;
  std::vector<std::vector<Assignment>> slots(chunk_count);
  std::vector<Status> statuses(chunk_count, Status::OK());
  std::atomic<bool> abort{false};
  std::atomic<uint64_t> rejected{0};

  auto run_chunk = [&](size_t c) {
    const size_t begin = c * chunk_size;
    const size_t end = std::min(n, begin + chunk_size);
    if (Status fp = fp_collect_chunk.Check(); !fp.ok()) {
      statuses[c] = std::move(fp);
      abort.store(true, std::memory_order_relaxed);
      return;
    }
    uint64_t local_rejected = 0;
    Assignment bindings;  // reused per candidate; clear() keeps its buckets
    for (size_t i = begin;
         i < end && !abort.load(std::memory_order_relaxed); ++i) {
      // The cancel poll is a relaxed load; Expired() amortises its own clock
      // reads — so polling both every candidate is cheap.
      if (CancelRequested(options)) {
        statuses[c] = PhaseCancelled("collect_triggers");
        abort.store(true, std::memory_order_relaxed);
        break;
      }
      if (deadline.Expired()) {
        statuses[c] = PhaseExhausted(
            "collect_triggers", "deadline exceeded during trigger enumeration");
        abort.store(true, std::memory_order_relaxed);
        break;
      }
      bindings.clear();
      if (!BindCandidate(first, instance.Row(rel, static_cast<TupleRef>(i)),
                         constraints, &bindings)) {
        ++local_rejected;
        continue;
      }
      Status status =
          search.ForEachHomWithPlan(*remaining_plan, bindings,
                                    [&slot = slots[c]](const Assignment& h) {
                                      slot.push_back(h);
                                      return true;
                                    });
      if (!status.ok()) {
        statuses[c] = std::move(status);
        abort.store(true, std::memory_order_relaxed);
        break;
      }
    }
    if (local_rejected != 0) {
      rejected.fetch_add(local_rejected, std::memory_order_relaxed);
    }
  };

  if (pool == nullptr) {
    for (size_t c = 0; c < chunk_count; ++c) run_chunk(c);
  } else {
    pool->ParallelFor(chunk_count, run_chunk);
  }

  if (options.stats != nullptr) {
    options.stats->hom_backtracks.fetch_add(
        rejected.load(std::memory_order_relaxed), std::memory_order_relaxed);
  }
  for (Status& status : statuses) {
    MAPINV_RETURN_NOT_OK(status);
  }

  size_t total = 0;
  for (const auto& slot : slots) total += slot.size();
  std::vector<Assignment> triggers;
  triggers.reserve(total);
  for (auto& slot : slots) {
    for (Assignment& h : slot) triggers.push_back(std::move(h));
  }
  return triggers;
}

SymbolContext& ResolveSymbols(const ExecutionOptions& options,
                              const Instance& input) {
  if (options.symbols == nullptr) return SymbolContext::Global();
  input.ForEachFact([&](RelationId, RowView row) {
    for (const Value& v : row) {
      if (v.is_null()) options.symbols->BumpNullPast(v.id());
    }
  });
  return *options.symbols;
}

}  // namespace mapinv
