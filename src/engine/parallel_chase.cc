#include "engine/parallel_chase.h"

#include <algorithm>
#include <atomic>
#include <functional>

#include "engine/failpoint.h"
#include "engine/thread_pool.h"
#include "engine/trace.h"
#include "eval/hom_plan.h"
#include "eval/vector_plan.h"

namespace mapinv {

namespace {

FailPoint fp_collect_entry("collect_triggers/entry");
FailPoint fp_collect_chunk("collect_triggers/chunk");

// Binds `atom`'s terms against `tuple` into `out` (starting empty), applying
// the same eager checks ForEachHom performs: constants must match, repeated
// variables must agree, constant-constrained variables reject nulls, and
// fully bound inequalities must hold. Returns false if the tuple is not a
// match for the atom. (The vectorized path runs the identical checks through
// the compiled SeedProgram; this is the scalar oracle.)
bool BindCandidate(const Atom& atom, RowView tuple,
                   const HomConstraints& constraints, Assignment* out) {
  for (size_t p = 0; p < atom.terms.size(); ++p) {
    const Term& t = atom.terms[p];
    if (t.is_constant()) {
      if (!(t.value() == tuple[p])) return false;
    } else {
      auto it = out->find(t.var());
      if (it == out->end()) {
        if (constraints.constant_vars.contains(t.var()) &&
            !tuple[p].is_constant()) {
          return false;
        }
        out->emplace(t.var(), tuple[p]);
      } else if (!(it->second == tuple[p])) {
        return false;
      }
    }
  }
  for (const VarPair& ne : constraints.inequalities) {
    auto a = out->find(ne.first);
    auto b = out->find(ne.second);
    if (a != out->end() && b != out->end() && a->second == b->second) {
      return false;
    }
  }
  return true;
}

// The variables the pinned atom binds — exactly the bound set BindCandidate
// assigns, hence the bound set the remaining-premise plan compiles against.
std::vector<VarId> PinnedVars(const Atom& atom) {
  std::vector<VarId> vars;
  for (const Term& t : atom.terms) {
    if (t.is_variable()) vars.push_back(t.var());
  }
  return vars;
}

// The distinct premise variables in ascending VarId order — the column order
// of every TriggerBatch built from `atoms`.
std::vector<VarId> TriggerColumns(const std::vector<Atom>& atoms) {
  std::vector<VarId> vars = CollectDistinctVars(atoms);
  std::sort(vars.begin(), vars.end());
  return vars;
}

// Maps each trigger column to the plan slot carrying its variable. Every
// premise variable has a slot: pinned variables live in the plan's fixed
// slots and the remaining atoms' variables are bound by steps.
Result<std::vector<uint16_t>> ColumnSlots(const HomPlan& plan,
                                          const std::vector<VarId>& vars) {
  std::vector<uint16_t> slots;
  slots.reserve(vars.size());
  for (VarId v : vars) {
    size_t s = 0;
    for (; s < plan.slot_vars.size(); ++s) {
      if (plan.slot_vars[s] == v) break;
    }
    if (s == plan.slot_vars.size()) {
      return Status::Internal("premise variable v" + std::to_string(v) +
                              " has no slot in the remaining-premise plan");
    }
    slots.push_back(static_cast<uint16_t>(s));
  }
  return slots;
}

// The shared chunked enumeration core: scans `pinned`'s candidate rows
// [begin_row, end_row) in insertion order, binds each against the pinned
// atom, runs the compiled remaining-premise plan, and appends every full
// trigger row passing `accept` (null = keep all; rows are in `out->vars`
// column order) to `out` in a deterministic order. One output slot per
// contiguous chunk, merged in chunk order, so the result is independent of
// scheduling and of the chunk count itself — threads == 1 executes the same
// chunks inline.
//
// `seed` non-null selects the vectorized path: each chunk block-scans its
// row range through the compiled seed checks and expands survivors through
// the selection-vector plan executor (`col_slots` maps trigger columns to
// plan slots). Null runs the scalar tuple-at-a-time oracle. Both paths fill
// `out` bit-identically.
Status ScanPinnedAtom(const HomSearch& search, const Instance& instance,
                      const Atom& pinned, RelationId rel, size_t begin_row,
                      size_t end_row, const HomPlan& remaining_plan,
                      const HomConstraints& constraints,
                      const SeedProgram* seed,
                      const std::vector<uint16_t>& col_slots,
                      const ExecutionOptions& options,
                      const ExecDeadline& deadline,
                      const std::function<bool(const Value*)>& accept,
                      TriggerBatch* out) {
  const size_t n = end_row - begin_row;
  if (n == 0) return Status::OK();
  const size_t stride = out->vars.size();

  int threads = options.threads < 1 ? 1 : options.threads;
  ThreadPool* pool = nullptr;
  if (threads > 1) {
    pool = options.pool != nullptr ? options.pool : &ThreadPool::Shared();
  }

  const size_t chunk_count =
      std::min(n, static_cast<size_t>(threads) * size_t{8});
  const size_t chunk_size = (n + chunk_count - 1) / chunk_count;
  std::vector<std::vector<Value>> slots(chunk_count);
  std::vector<size_t> slot_rows(chunk_count, 0);
  std::vector<Status> statuses(chunk_count, Status::OK());
  std::atomic<bool> abort{false};
  std::atomic<uint64_t> rejected{0};

  auto run_chunk = [&](size_t c) {
    const size_t begin = begin_row + c * chunk_size;
    const size_t end = std::min(end_row, begin + chunk_size);
    if (Status fp = fp_collect_chunk.Check(); !fp.ok()) {
      statuses[c] = std::move(fp);
      abort.store(true, std::memory_order_relaxed);
      return;
    }
    std::vector<Value>& slot = slots[c];
    size_t rows = 0;
    if (seed != nullptr) {
      // Vectorized chunk: the seeded executor polls cancel/deadline once per
      // block and books its work into the vector_* counters.
      VectorRunStats vstats;
      std::vector<Value> rowbuf(stride);
      Status status = RunSeededPlanVectorized(
          instance, *seed, begin, end, remaining_plan, options.vector_batch,
          [&](const Value* slot_row) {
            if (abort.load(std::memory_order_relaxed)) return false;
            for (size_t j = 0; j < stride; ++j) {
              rowbuf[j] = slot_row[col_slots[j]];
            }
            if (!accept || accept(rowbuf.data())) {
              slot.insert(slot.end(), rowbuf.begin(), rowbuf.end());
              ++rows;
            }
            return true;
          },
          &options, &deadline, "collect_triggers",
          options.stats != nullptr ? &vstats : nullptr);
      FlushVectorRunStats(vstats, options.stats);
      if (options.stats != nullptr) {
        // One search per seeded plan execution (the scalar branch books one
        // per surviving seed candidate instead — the counter means "plan
        // executions", so its magnitude is path-dependent by design).
        options.stats->hom_searches.fetch_add(1, std::memory_order_relaxed);
      }
      if (!status.ok()) {
        statuses[c] = std::move(status);
        abort.store(true, std::memory_order_relaxed);
      }
      slot_rows[c] = rows;
      return;
    }
    uint64_t local_rejected = 0;
    Assignment bindings;  // reused per candidate; clear() keeps its buckets
    std::vector<Value> rowbuf(stride);
    for (size_t i = begin;
         i < end && !abort.load(std::memory_order_relaxed); ++i) {
      // The cancel poll is a relaxed load; Expired() amortises its own clock
      // reads — so polling both every candidate is cheap.
      if (CancelRequested(options)) {
        statuses[c] = PhaseCancelled("collect_triggers");
        abort.store(true, std::memory_order_relaxed);
        break;
      }
      if (deadline.Expired()) {
        statuses[c] = PhaseExhausted(
            "collect_triggers", "deadline exceeded during trigger enumeration");
        abort.store(true, std::memory_order_relaxed);
        break;
      }
      bindings.clear();
      if (!BindCandidate(pinned, instance.Row(rel, static_cast<TupleRef>(i)),
                         constraints, &bindings)) {
        ++local_rejected;
        continue;
      }
      Status status = search.ForEachHomWithPlanScalar(
          remaining_plan, bindings, [&](const Assignment& h) {
            for (size_t j = 0; j < stride; ++j) {
              rowbuf[j] = h.at(out->vars[j]);
            }
            if (!accept || accept(rowbuf.data())) {
              slot.insert(slot.end(), rowbuf.begin(), rowbuf.end());
              ++rows;
            }
            return true;
          });
      if (!status.ok()) {
        statuses[c] = std::move(status);
        abort.store(true, std::memory_order_relaxed);
        break;
      }
    }
    if (local_rejected != 0) {
      rejected.fetch_add(local_rejected, std::memory_order_relaxed);
    }
    slot_rows[c] = rows;
  };

  if (pool == nullptr) {
    for (size_t c = 0; c < chunk_count; ++c) run_chunk(c);
  } else {
    pool->ParallelFor(chunk_count, run_chunk);
  }

  if (options.stats != nullptr) {
    options.stats->hom_backtracks.fetch_add(
        rejected.load(std::memory_order_relaxed), std::memory_order_relaxed);
  }
  for (Status& status : statuses) {
    MAPINV_RETURN_NOT_OK(status);
  }

  size_t total_values = out->values.size();
  for (const auto& slot : slots) total_values += slot.size();
  out->values.reserve(total_values);
  for (size_t c = 0; c < chunk_count; ++c) {
    out->values.insert(out->values.end(), slots[c].begin(), slots[c].end());
    out->rows += slot_rows[c];
  }
  return Status::OK();
}

}  // namespace

Result<TriggerBatch> CollectTriggers(
    const HomSearch& search, const Instance& instance,
    const std::vector<Atom>& premise, const HomConstraints& constraints,
    const ExecutionOptions& options, const ExecDeadline& deadline) {
  // Validates every premise atom and builds the indexes up front, so the
  // parallel section below only reads shared state.
  MAPINV_FAILPOINT(fp_collect_entry);
  MAPINV_RETURN_NOT_OK(search.Prewarm(premise));

  TriggerBatch batch;
  batch.vars = TriggerColumns(premise);

  if (premise.empty()) {
    // ForEachHom reports the empty assignment once (constraints over an
    // empty assignment hold trivially): one row with zero columns.
    batch.rows = 1;
    return batch;
  }

  // Initial atom: the plan compiler's first-step rule under the empty
  // assignment — most constant terms, ties to the smaller relation, then to
  // the earlier atom. Using the same rule keeps the chunked enumeration in
  // the exact order the compiled full-premise plan would produce.
  size_t best_index = 0;
  int best_bound = -1;
  size_t best_cardinality = 0;
  for (size_t i = 0; i < premise.size(); ++i) {
    int bound = 0;
    for (const Term& t : premise[i].terms) {
      if (t.is_constant()) ++bound;
    }
    MAPINV_ASSIGN_OR_RETURN(
        RelationId id,
        instance.schema().Require(RelationText(premise[i].relation)));
    const size_t cardinality = instance.NumRows(id);
    if (bound > best_bound ||
        (bound == best_bound && cardinality < best_cardinality)) {
      best_bound = bound;
      best_cardinality = cardinality;
      best_index = i;
    }
  }
  const Atom& first = premise[best_index];
  std::vector<Atom> remaining;
  remaining.reserve(premise.size() - 1);
  for (size_t i = 0; i < premise.size(); ++i) {
    if (i != best_index) remaining.push_back(premise[i]);
  }

  MAPINV_ASSIGN_OR_RETURN(
      RelationId rel, instance.schema().Require(RelationText(first.relation)));
  const size_t n = instance.NumRows(rel);
  if (n == 0) return batch;

  // Compile the remaining-premise plan once, before the fan-out, so worker
  // threads execute a shared immutable plan instead of racing through the
  // plan cache.
  MAPINV_ASSIGN_OR_RETURN(
      std::shared_ptr<const HomPlan> remaining_plan,
      search.GetPlanForVars(remaining, constraints, PinnedVars(first)));

  const bool vectorized =
      options.vectorized && options.vector_batch > 0 &&
      remaining_plan->steps.size() <= options.vector_max_plan_steps;
  if (!vectorized && options.vectorized && options.vector_batch > 0 &&
      options.stats != nullptr) {
    options.stats->vector_plan_fallbacks.fetch_add(1,
                                                   std::memory_order_relaxed);
  }
  SeedProgram seed;
  std::vector<uint16_t> col_slots;
  if (vectorized) {
    MAPINV_ASSIGN_OR_RETURN(seed,
                            CompileSeedProgram(instance, first, *remaining_plan));
    MAPINV_ASSIGN_OR_RETURN(col_slots, ColumnSlots(*remaining_plan, batch.vars));
  }
  MAPINV_RETURN_NOT_OK(ScanPinnedAtom(
      search, instance, first, rel, 0, n, *remaining_plan, constraints,
      vectorized ? &seed : nullptr, col_slots, options, deadline, nullptr,
      &batch));
  return batch;
}

DeltaWatermark WatermarkOf(const Instance& instance) {
  DeltaWatermark watermark;
  watermark.rows.reserve(instance.schema().size());
  for (RelationId r = 0; r < instance.schema().size(); ++r) {
    watermark.rows.push_back(instance.NumRows(r));
  }
  return watermark;
}

Result<TriggerBatch> CollectTriggersDelta(
    const HomSearch& search, const Instance& instance,
    const std::vector<Atom>& premise, const HomConstraints& constraints,
    const DeltaWatermark& watermark, const ExecutionOptions& options,
    const ExecDeadline& deadline) {
  MAPINV_FAILPOINT(fp_collect_entry);
  MAPINV_RETURN_NOT_OK(search.Prewarm(premise));

  TriggerBatch batch;
  batch.vars = TriggerColumns(premise);

  // The empty premise's single trigger (the empty assignment) touches no
  // row, so it is never a *delta* trigger.
  if (premise.empty()) return batch;

  std::vector<RelationId> rels(premise.size());
  for (size_t i = 0; i < premise.size(); ++i) {
    MAPINV_ASSIGN_OR_RETURN(
        rels[i], instance.schema().Require(RelationText(premise[i].relation)));
  }

  // One image term of an earlier premise atom, pre-resolved for the accept
  // filter: a constant or a trigger-row column.
  struct ImgTerm {
    bool is_const;
    Value value;  // is_const
    size_t col = 0;
  };

  std::vector<Atom> remaining;
  for (size_t d = 0; d < premise.size(); ++d) {
    const RelationId rel = rels[d];
    const size_t n = instance.NumRows(rel);
    const size_t mark =
        rel < watermark.rows.size() ? std::min(watermark.rows[rel], n) : 0;
    if (mark >= n) continue;  // no new rows for this pin

    const Atom& pinned = premise[d];
    remaining.clear();
    for (size_t i = 0; i < premise.size(); ++i) {
      if (i != d) remaining.push_back(premise[i]);
    }
    MAPINV_ASSIGN_OR_RETURN(
        std::shared_ptr<const HomPlan> remaining_plan,
        search.GetPlanForVars(remaining, constraints, PinnedVars(pinned)));

    const bool vectorized =
        options.vectorized && options.vector_batch > 0 &&
        remaining_plan->steps.size() <= options.vector_max_plan_steps;
    if (!vectorized && options.vectorized && options.vector_batch > 0 &&
        options.stats != nullptr) {
      options.stats->vector_plan_fallbacks.fetch_add(1,
                                                     std::memory_order_relaxed);
    }
    SeedProgram seed;
    std::vector<uint16_t> col_slots;
    if (vectorized) {
      MAPINV_ASSIGN_OR_RETURN(
          seed, CompileSeedProgram(instance, pinned, *remaining_plan));
      MAPINV_ASSIGN_OR_RETURN(col_slots,
                              ColumnSlots(*remaining_plan, batch.vars));
    }

    // Exact-partition filter: keep a candidate only when every *earlier*
    // premise atom's image row predates the watermark, so each delta trigger
    // is counted exactly once — at its first new-row position. (Later atoms
    // may bind old or new rows freely.)
    std::vector<std::vector<ImgTerm>> earlier(d);
    for (size_t e = 0; e < d; ++e) {
      earlier[e].reserve(premise[e].terms.size());
      for (const Term& t : premise[e].terms) {
        ImgTerm it;
        it.is_const = t.is_constant();
        if (it.is_const) {
          it.value = t.value();
        } else {
          it.col = batch.ColumnOf(t.var());
        }
        earlier[e].push_back(it);
      }
    }
    auto accept = [&](const Value* row) {
      std::vector<Value> image;
      for (size_t e = 0; e < d; ++e) {
        image.clear();
        for (const ImgTerm& it : earlier[e]) {
          image.push_back(it.is_const ? it.value : row[it.col]);
        }
        const std::optional<TupleRef> ref = instance.FindRow(rels[e], image);
        if (!ref.has_value() || watermark.IsNew(rels[e], *ref)) return false;
      }
      return true;
    };
    MAPINV_RETURN_NOT_OK(ScanPinnedAtom(
        search, instance, pinned, rel, mark, n, *remaining_plan, constraints,
        vectorized ? &seed : nullptr, col_slots, options, deadline, accept,
        &batch));
  }
  return batch;
}

SymbolContext& ResolveSymbols(const ExecutionOptions& options,
                              const Instance& input) {
  if (options.symbols == nullptr) return SymbolContext::Global();
  input.ForEachFact([&](RelationId, RowView row) {
    for (const Value& v : row) {
      if (v.is_null()) options.symbols->BumpNullPast(v.id());
    }
  });
  return *options.symbols;
}

}  // namespace mapinv
