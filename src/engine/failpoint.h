/// \file failpoint.h
/// \brief Deterministic fault injection: named FailPoint sites threaded
/// through the pipeline.
///
/// A FailPoint is a named site compiled into the library at a place where a
/// real fault could strike — a phase boundary, a world fork, an arena write,
/// a plan compile, a cache insert. Disarmed (the default), a site is a
/// single relaxed atomic load and a predictable branch; armed, it returns an
/// injected non-OK Status that propagates through the normal
/// Status/Result error path, so tests can prove that *every* failure exit of
/// the pipeline leaves inputs untouched and the engine reusable.
///
/// Sites are defined at namespace scope in the .cc that owns them:
///
///   namespace {
///   FailPoint fp_fire("chase_tgds/fire");
///   }  // namespace
///   ...
///   MAPINV_FAILPOINT(fp_fire);   // returns the injected Status, if any
///
/// and are registered with the global FailPointRegistry during static
/// initialisation, so a sweep test can enumerate every site — including the
/// ones its workload has not executed yet — via SiteNames().
///
/// Arming modes (FailPointSpec::Mode):
///   * kCount  — never fails; counts hits (coverage probes);
///   * kAlways — every hit fails;
///   * kNth    — exactly the nth hit fails (1-based), later hits pass;
///   * kRandom — each hit fails with probability `rate`, driven by a seeded
///               per-site splitmix64 stream, so a given (seed, hit-index)
///               sequence is reproducible run-to-run.
///
/// The injected Status is `Status(spec.code, "failpoint '<name>': injected
/// failure")` — deterministic, no pointers, no timestamps. The default code
/// is kInternal: an injected fault is a simulated *bug or hard fault*, not
/// an organic budget exhaustion, so it is never degraded to a partial
/// result (see ExecutionOptions::on_exhausted).
///
/// Thread-safety: Check() may race with Activate/Deactivate; the fast path
/// is a relaxed load and the slow path serialises on the registry mutex.

#ifndef MAPINV_ENGINE_FAILPOINT_H_
#define MAPINV_ENGINE_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "base/status.h"

namespace mapinv {

/// \brief How an armed FailPoint decides whether a hit fails.
struct FailPointSpec {
  enum class Mode {
    kCount,   ///< never fail, just count hits (coverage probe)
    kAlways,  ///< fail every hit
    kNth,     ///< fail exactly the nth hit (1-based)
    kRandom,  ///< fail each hit with probability `rate` (seeded)
    /// Kill the whole process on the nth hit (1-based, via `nth` — the
    /// per-site crash schedule), simulating SIGKILL: raise(SIGKILL), so no
    /// atexit handler, no stream flush, no stack unwinding runs. Crash-
    /// consistency tests arm this at checkpoint-boundary sites (job/*) in a
    /// forked child and prove that resuming from the surviving job directory
    /// reproduces the uninterrupted run byte-for-byte (docs/JOBS.md).
    kAbortProcess,
  };
  Mode mode = Mode::kAlways;
  /// For kNth: the 1-based hit index that fails.
  uint64_t nth = 1;
  /// For kRandom: failure probability in [0, 1].
  double rate = 0.0;
  /// For kRandom: stream seed; the decision for hit i is a pure function of
  /// (seed, i), so runs are reproducible.
  uint64_t seed = 0;
  /// Status code of the injected failure.
  StatusCode code = StatusCode::kInternal;
};

/// \brief One named injection site. Define at namespace scope (registration
/// happens during static initialisation); never destroy while the registry
/// is in use — sites are expected to live for the process lifetime.
class FailPoint {
 public:
  explicit FailPoint(const char* name);

  FailPoint(const FailPoint&) = delete;
  FailPoint& operator=(const FailPoint&) = delete;

  const char* name() const { return name_; }

  /// The hot-path probe: a no-op branch while disarmed.
  Status Check() {
    if (!armed_.load(std::memory_order_relaxed)) return Status::OK();
    return Trip();
  }

  /// Hits observed while armed (any mode, including kCount).
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  /// Hits that actually injected a failure.
  uint64_t trips() const { return trips_.load(std::memory_order_relaxed); }

 private:
  friend class FailPointRegistry;

  /// Slow path: only runs while armed; serialises on the registry mutex.
  Status Trip();

  const char* name_;
  std::atomic<bool> armed_{false};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> trips_{0};
  FailPointSpec spec_;  // guarded by the registry mutex
};

/// \brief Process-wide directory of every FailPoint site, keyed by name.
class FailPointRegistry {
 public:
  static FailPointRegistry& Global();

  /// Arms the named site. kNotFound if no such site is registered;
  /// kInvalidArgument for a bad spec (rate outside [0,1], nth == 0, or an
  /// OK injection code).
  Status Activate(std::string_view name, const FailPointSpec& spec);
  /// Disarms the named site (hit/trip counters are kept until re-armed).
  Status Deactivate(std::string_view name);
  /// Disarms every site.
  void DeactivateAll();

  /// All registered site names, sorted, so sweeps are deterministic.
  std::vector<std::string> SiteNames() const;
  /// The site object for `name`; nullptr if unknown.
  FailPoint* Find(std::string_view name) const;

 private:
  friend class FailPoint;
  FailPointRegistry() = default;
  void Register(FailPoint* site);

  mutable std::mutex mu_;
  std::vector<FailPoint*> sites_;
};

/// Propagates the injected Status out of the enclosing function when `site`
/// is armed and decides to fail this hit. Works in any function returning
/// Status or Result<T>.
#define MAPINV_FAILPOINT(site)                    \
  do {                                            \
    if (::mapinv::Status _fp = (site).Check(); !_fp.ok()) return _fp; \
  } while (0)

}  // namespace mapinv

#endif  // MAPINV_ENGINE_FAILPOINT_H_
