#include "engine/request.h"

#include <utility>
#include <vector>

#include "base/parse.h"
#include "base/symbol_context.h"
#include "chase/chase_tgd.h"
#include "chase/maintained.h"
#include "chase/round_trip.h"
#include "check/properties.h"
#include "eval/instance_core.h"
#include "inversion/compose.h"
#include "inversion/cq_maximum_recovery.h"
#include "inversion/maximum_recovery.h"
#include "inversion/polyso.h"
#include "mapgen/generators.h"
#include "parser/parser.h"
#include "rewrite/rewrite.h"

namespace mapinv {
namespace {

// Parses "N" or "N,K" following a gen: family prefix with the shared strict
// digits-only rule (base/parse.h). Parameters are sizes of generated
// mappings, so anything outside [1, 10^6] is a spec error, not a request
// (and the bound keeps an overflowed literal from truncating into a small
// int).
bool ParseGenParams(const std::string& text, int* a, int* b) {
  constexpr uint64_t kMaxParam = 1000000;
  const size_t comma = text.find(',');
  uint64_t v = 0;
  if (!ParseUint(std::string_view(text).substr(0, comma), kMaxParam, &v) ||
      v == 0) {
    return false;
  }
  *a = static_cast<int>(v);
  if (comma == std::string::npos) return true;
  if (b == nullptr) return false;
  if (!ParseUint(std::string_view(text).substr(comma + 1), kMaxParam, &v) ||
      v == 0) {
    return false;
  }
  *b = static_cast<int>(v);
  return true;
}

// Builds the effective per-request options: the transport's base, with the
// request's overrides applied. `threads` can lower but never raise the
// transport's budget; stats/symbols are installed by ExecuteRequest.
ExecutionOptions EffectiveOptions(const RequestOptions& req,
                                  const ExecutionOptions& base) {
  ExecutionOptions options = base;
  if (req.max_facts) options.max_new_facts = static_cast<size_t>(*req.max_facts);
  if (req.max_worlds) options.max_worlds = static_cast<size_t>(*req.max_worlds);
  if (req.max_disjuncts) {
    options.max_disjuncts = static_cast<size_t>(*req.max_disjuncts);
  }
  if (req.max_rules) options.max_rules = static_cast<size_t>(*req.max_rules);
  if (req.deadline_ms) options.deadline_ms = *req.deadline_ms;
  if (req.threads) {
    int threads = *req.threads;
    if (threads < 1) threads = 1;
    if (base.threads >= 1 && threads > base.threads) threads = base.threads;
    options.threads = threads;
  }
  if (req.oblivious) options.oblivious = *req.oblivious;
  if (req.minimize) options.minimize = *req.minimize;
  if (req.on_exhausted) options.on_exhausted = *req.on_exhausted;
  if (req.memory_budget_bytes) {
    options.memory_budget_bytes = *req.memory_budget_bytes;
  }
  if (req.spill_dir) options.spill_dir = *req.spill_dir;
  if (req.vector_max_plan_steps) {
    options.vector_max_plan_steps =
        static_cast<size_t>(*req.vector_max_plan_steps);
  }
  if (req.checkpoint_dir) options.checkpoint_dir = *req.checkpoint_dir;
  if (req.checkpoint_every) {
    options.checkpoint_every = static_cast<size_t>(*req.checkpoint_every);
  }
  if (req.resume) options.resume = *req.resume;
  return options;
}

// Resolves the request's primary mapping: bound object first, then text.
Result<std::shared_ptr<const TgdMapping>> ResolveMapping(
    const EngineRequest& request) {
  if (request.bound_mapping != nullptr) return request.bound_mapping;
  if (request.mapping.empty()) {
    return Status::InvalidArgument("command '" + request.command +
                                   "' needs a mapping");
  }
  MAPINV_ASSIGN_OR_RETURN(TgdMapping mapping,
                          LoadMappingSpec(request.mapping));
  return std::make_shared<const TgdMapping>(std::move(mapping));
}

// Resolves the request's instance payload against `schema`.
Result<std::shared_ptr<const Instance>> ResolveInstance(
    const EngineRequest& request, const Schema& schema) {
  if (request.bound_instance != nullptr) {
    // A bound instance (session-held or snapshot-loaded) carries its own
    // schema; relation ids are positional, so it must match id-for-id or
    // the compiled atoms would read the wrong relations.
    const Schema& got = request.bound_instance->schema();
    bool match = got.size() == schema.size();
    for (RelationId r = 0; match && r < schema.size(); ++r) {
      match = got.name(r) == schema.name(r) && got.arity(r) == schema.arity(r);
    }
    if (!match) {
      return Status::InvalidArgument(
          "bound instance schema does not match the mapping's source schema");
    }
    return request.bound_instance;
  }
  if (request.instance.empty()) {
    return Status::InvalidArgument("command '" + request.command +
                                   "' needs an instance");
  }
  MAPINV_ASSIGN_OR_RETURN(Instance instance,
                          ParseInstance(request.instance, schema));
  return std::make_shared<const Instance>(std::move(instance));
}

struct ExecOutcome {
  ResultKind kind = ResultKind::kNone;
  std::string result;
  std::shared_ptr<const ReverseMapping> reverse;
  std::shared_ptr<const Instance> instance;
};

// The dispatch body: every compute command, rendered exactly as the CLI
// historically printed it.
Result<ExecOutcome> Dispatch(const EngineRequest& request,
                             const ExecutionOptions& options) {
  const std::string& command = request.command;

  if (command == "ping") {
    return ExecOutcome{ResultKind::kText, "pong"};
  }
  if (command == "core") {
    if (request.instance.empty() && request.bound_instance == nullptr) {
      return Status::InvalidArgument("command 'core' needs an instance");
    }
    Result<Instance> parsed =
        request.bound_instance != nullptr
            ? Result<Instance>(request.bound_instance->Snapshot())
            : ParseInstanceInferSchema(request.instance);
    MAPINV_RETURN_NOT_OK(parsed.status());
    MAPINV_ASSIGN_OR_RETURN(Instance core,
                            CoreOfInstance(*parsed, options.stats));
    ExecOutcome outcome{ResultKind::kInstance, core.ToString() + "\n"};
    outcome.instance = std::make_shared<const Instance>(std::move(core));
    return outcome;
  }
  if (command == "so-invert") {
    if (request.mapping.empty()) {
      return Status::InvalidArgument("command 'so-invert' needs a mapping");
    }
    MAPINV_ASSIGN_OR_RETURN(SOTgdMapping so,
                            ParseSOTgdMapping(request.mapping));
    MAPINV_ASSIGN_OR_RETURN(SOInverseMapping inverse,
                            PolySOInverse(so, options));
    return ExecOutcome{ResultKind::kSOInverse, inverse.ToString()};
  }

  MAPINV_ASSIGN_OR_RETURN(std::shared_ptr<const TgdMapping> mapping,
                          ResolveMapping(request));

  if (command == "compose") {
    if (request.mapping2.empty()) {
      return Status::InvalidArgument(
          "command 'compose' needs a second mapping");
    }
    MAPINV_ASSIGN_OR_RETURN(TgdMapping second,
                            LoadMappingSpec(request.mapping2));
    MAPINV_ASSIGN_OR_RETURN(SOTgdMapping composed,
                            ComposeTgdMappings(*mapping, second, options));
    return ExecOutcome{ResultKind::kSOMapping, composed.ToString()};
  }
  if (command == "check") {
    if (request.reverse.empty() && request.bound_reverse == nullptr) {
      return Status::InvalidArgument(
          "command 'check' needs a reverse mapping");
    }
    std::shared_ptr<const ReverseMapping> reverse = request.bound_reverse;
    if (reverse == nullptr) {
      MAPINV_ASSIGN_OR_RETURN(ReverseMapping parsed,
                              ParseReverseMapping(request.reverse));
      // Rebind to the full mapping schemas (the inferred ones may miss
      // relations the reverse mapping never mentions).
      reverse = std::make_shared<const ReverseMapping>(
          mapping->target, mapping->source, parsed.deps);
    }
    MAPINV_ASSIGN_OR_RETURN(std::shared_ptr<const Instance> source,
                            ResolveInstance(request, *mapping->source));
    MAPINV_ASSIGN_OR_RETURN(
        auto violation,
        CheckCRecovery(*mapping, *reverse, {source->Snapshot()},
                       PerRelationQueries(*mapping->source), options));
    if (violation.has_value()) {
      return ExecOutcome{ResultKind::kCheckViolation,
                         "NOT a sound recovery:\n" + violation->description +
                             "\n"};
    }
    return ExecOutcome{
        ResultKind::kCheckOk,
        "sound recovery on this instance (certain answers of every "
        "per-relation query are contained in the source)\n"};
  }
  if (command == "invert" || command == "maxrec") {
    MAPINV_ASSIGN_OR_RETURN(ReverseMapping recovery,
                            command == "invert"
                                ? CqMaximumRecovery(*mapping, options)
                                : MaximumRecovery(*mapping, options));
    auto shared = std::make_shared<const ReverseMapping>(std::move(recovery));
    ExecOutcome outcome{ResultKind::kReverseMapping, shared->ToString()};
    outcome.reverse = std::move(shared);
    return outcome;
  }
  if (command == "polyso") {
    MAPINV_ASSIGN_OR_RETURN(SOInverseMapping inverse,
                            PolySOInverseOfTgds(*mapping, options));
    return ExecOutcome{ResultKind::kSOInverse, inverse.ToString()};
  }
  if (command == "rewrite") {
    if (request.query.empty()) {
      return Status::InvalidArgument("command 'rewrite' needs a query");
    }
    MAPINV_ASSIGN_OR_RETURN(ConjunctiveQuery query, ParseCq(request.query));
    MAPINV_ASSIGN_OR_RETURN(UnionCq rewriting,
                            RewriteOverSource(*mapping, query, options));
    return ExecOutcome{ResultKind::kUnionCq, rewriting.ToString() + "\n"};
  }
  if (command == "exchange-delta") {
    // Sessionful: the serving layer bound the session's maintained solution;
    // append the delta and absorb it incrementally.
    if (request.bound_maintained != nullptr) {
      if (!request.delta.empty()) {
        MAPINV_RETURN_NOT_OK(
            request.bound_maintained->AppendText(request.delta).status());
      }
      MAPINV_ASSIGN_OR_RETURN(
          std::string rendered,
          request.bound_maintained->RefreshAndRender(options));
      ExecOutcome outcome{ResultKind::kInstance, std::move(rendered)};
      outcome.instance = std::make_shared<const Instance>(
          request.bound_maintained->TargetSnapshot());
      return outcome;
    }
    // Sessionless: run the full maintenance lifecycle locally — base chase,
    // append, incremental absorb — so the CLI path exercises the same
    // delta machinery end to end (and stays deterministic: the maintained
    // solution owns its own symbol scope).
    MAPINV_ASSIGN_OR_RETURN(std::shared_ptr<const Instance> source,
                            ResolveInstance(request, *mapping->source));
    auto maintained = std::make_shared<MaintainedSolution>(mapping);
    MAPINV_RETURN_NOT_OK(maintained->AppendInstance(*source).status());
    MAPINV_RETURN_NOT_OK(maintained->RefreshAndRender(options).status());
    if (!request.delta.empty()) {
      MAPINV_RETURN_NOT_OK(maintained->AppendText(request.delta).status());
    }
    MAPINV_ASSIGN_OR_RETURN(std::string rendered,
                            maintained->RefreshAndRender(options));
    ExecOutcome outcome{ResultKind::kInstance, std::move(rendered)};
    outcome.instance =
        std::make_shared<const Instance>(maintained->TargetSnapshot());
    return outcome;
  }
  if (command == "exchange" || command == "roundtrip") {
    MAPINV_ASSIGN_OR_RETURN(std::shared_ptr<const Instance> source,
                            ResolveInstance(request, *mapping->source));
    MAPINV_ASSIGN_OR_RETURN(Instance target,
                            ChaseTgds(*mapping, *source, options));
    if (command == "exchange") {
      ExecOutcome outcome{ResultKind::kInstance, target.ToString() + "\n"};
      outcome.instance = std::make_shared<const Instance>(std::move(target));
      return outcome;
    }
    std::shared_ptr<const ReverseMapping> reverse = request.bound_reverse;
    if (reverse == nullptr && !request.reverse.empty()) {
      // An explicit reverse mapping (e.g. maxrec output, disjunctions and
      // all) drives the world enumeration instead of the CQ recovery.
      MAPINV_ASSIGN_OR_RETURN(ReverseMapping parsed,
                              ParseReverseMapping(request.reverse));
      reverse = std::make_shared<const ReverseMapping>(
          mapping->target, mapping->source, parsed.deps);
    }
    if (reverse == nullptr) {
      MAPINV_ASSIGN_OR_RETURN(ReverseMapping recovery,
                              CqMaximumRecovery(*mapping, options));
      reverse =
          std::make_shared<const ReverseMapping>(std::move(recovery));
    }
    MAPINV_ASSIGN_OR_RETURN(
        std::vector<Instance> worlds,
        RoundTripWorlds(*mapping, *reverse, *source, options));
    std::string out = "target:    " + target.ToString() + "\n";
    for (const Instance& world : worlds) {
      out += "recovered: " + world.ToString() + "\n";
    }
    return ExecOutcome{ResultKind::kWorlds, std::move(out)};
  }
  return Status::InvalidArgument("unknown command '" + command + "'");
}

// Accumulates a finished request's counters into the transport's lifetime
// sink (plain atomic adds; `partial` ORs).
void AccumulateInto(const ExecStatsSnapshot& s, ExecStats* sink) {
  if (sink == nullptr) return;
  sink->chase_steps.fetch_add(s.chase_steps, std::memory_order_relaxed);
  sink->hom_backtracks.fetch_add(s.hom_backtracks, std::memory_order_relaxed);
  sink->hom_searches.fetch_add(s.hom_searches, std::memory_order_relaxed);
  sink->hom_plans_compiled.fetch_add(s.hom_plans_compiled,
                                     std::memory_order_relaxed);
  sink->hom_bucket_candidates.fetch_add(s.hom_bucket_candidates,
                                        std::memory_order_relaxed);
  sink->hom_slot_bindings.fetch_add(s.hom_slot_bindings,
                                    std::memory_order_relaxed);
  sink->cache_hits.fetch_add(s.cache_hits, std::memory_order_relaxed);
  sink->cache_misses.fetch_add(s.cache_misses, std::memory_order_relaxed);
  sink->ObserveArenaBytes(s.tuples_arena_bytes);
  sink->index_catchup_rows.fetch_add(s.index_catchup_rows,
                                     std::memory_order_relaxed);
  sink->vector_blocks_scanned.fetch_add(s.vector_blocks_scanned,
                                        std::memory_order_relaxed);
  sink->vector_rows_scanned.fetch_add(s.vector_rows_scanned,
                                      std::memory_order_relaxed);
  sink->vector_rows_selected.fetch_add(s.vector_rows_selected,
                                       std::memory_order_relaxed);
  sink->bulk_rows_appended.fetch_add(s.bulk_rows_appended,
                                     std::memory_order_relaxed);
  sink->worlds_forked.fetch_add(s.worlds_forked, std::memory_order_relaxed);
  sink->segments_spilled.fetch_add(s.segments_spilled,
                                   std::memory_order_relaxed);
  sink->segments_faulted.fetch_add(s.segments_faulted,
                                   std::memory_order_relaxed);
  sink->ObserveResidentBytes(s.arena_resident_bytes);
  sink->vector_plan_fallbacks.fetch_add(s.vector_plan_fallbacks,
                                        std::memory_order_relaxed);
  sink->segment_faultin_retries.fetch_add(s.segment_faultin_retries,
                                          std::memory_order_relaxed);
  sink->jobs_checkpointed.fetch_add(s.jobs_checkpointed,
                                    std::memory_order_relaxed);
  sink->worlds_resumed.fetch_add(s.worlds_resumed, std::memory_order_relaxed);
  sink->checkpoint_bytes.fetch_add(s.checkpoint_bytes,
                                   std::memory_order_relaxed);
  if (s.partial) sink->partial.store(true, std::memory_order_relaxed);
}

}  // namespace

const char* ResultKindName(ResultKind kind) {
  switch (kind) {
    case ResultKind::kNone: return "none";
    case ResultKind::kReverseMapping: return "reverse_mapping";
    case ResultKind::kSOMapping: return "so_mapping";
    case ResultKind::kSOInverse: return "so_inverse";
    case ResultKind::kUnionCq: return "union_cq";
    case ResultKind::kInstance: return "instance";
    case ResultKind::kWorlds: return "worlds";
    case ResultKind::kCheckOk: return "check_ok";
    case ResultKind::kCheckViolation: return "check_violation";
    case ResultKind::kText: return "text";
  }
  return "none";
}

bool IsEngineCommand(std::string_view command) {
  static constexpr std::string_view kCommands[] = {
      "invert",    "maxrec",    "polyso",  "rewrite", "exchange",
      "exchange-delta", "roundtrip", "so-invert", "compose", "check",
      "core",      "ping"};
  for (std::string_view c : kCommands) {
    if (command == c) return true;
  }
  return false;
}

Result<TgdMapping> LoadMappingSpec(std::string_view spec) {
  if (spec.rfind("gen:", 0) != 0) return ParseTgdMapping(spec);
  const std::string rest(spec.substr(4));
  const size_t colon = rest.find(':');
  const std::string family = rest.substr(0, colon);
  const std::string params =
      colon == std::string::npos ? "" : rest.substr(colon + 1);
  int a = 0;
  int b = 0;
  if (family == "exp") {
    a = 3;
    b = 9;  // default: big enough that Section 4 inversion needs a budget
    if (!params.empty() && !ParseGenParams(params, &a, &b)) {
      return Status::InvalidArgument("bad generator spec '" +
                                     std::string(spec) +
                                     "' (want gen:exp:N,K)");
    }
    return ExponentialFamilyMapping(a, b);
  }
  if (family == "chain") {
    a = 3;
    if (!params.empty() && !ParseGenParams(params, &a, nullptr)) {
      return Status::InvalidArgument("bad generator spec '" +
                                     std::string(spec) +
                                     "' (want gen:chain:M)");
    }
    return ChainJoinMapping(a);
  }
  if (family == "copy") {
    a = 2;
    b = 2;
    if (!params.empty() && !ParseGenParams(params, &a, &b)) {
      return Status::InvalidArgument("bad generator spec '" +
                                     std::string(spec) +
                                     "' (want gen:copy:N,A)");
    }
    return CopyMapping(a, b);
  }
  if (family == "proj") {
    a = 2;
    if (!params.empty() && !ParseGenParams(params, &a, nullptr)) {
      return Status::InvalidArgument("bad generator spec '" +
                                     std::string(spec) +
                                     "' (want gen:proj:N)");
    }
    return ProjectionMapping(a);
  }
  return Status::InvalidArgument("unknown generator family in '" +
                                 std::string(spec) +
                                 "' (know gen:exp, gen:chain, gen:copy, "
                                 "gen:proj)");
}

EngineResponse ExecuteRequest(const EngineRequest& request,
                              const ExecutionOptions& base) {
  EngineResponse response;
  response.id = request.id;

  ExecutionOptions options = EffectiveOptions(request.options, base);
  // Fresh per-request sinks: responses depend only on the request and the
  // base configuration, never on prior traffic (see the header contract).
  ExecStats stats;
  SymbolContext symbols;
  options.stats = &stats;
  options.symbols = &symbols;

  Result<ExecOutcome> outcome = Dispatch(request, options);
  response.stats = stats.Snapshot();
  response.partial = response.stats.partial;
  AccumulateInto(response.stats, base.stats);
  if (!outcome.ok()) {
    response.status = outcome.status();
    return response;
  }
  response.kind = outcome->kind;
  response.result = std::move(outcome->result);
  response.reverse_artifact = std::move(outcome->reverse);
  response.instance_artifact = std::move(outcome->instance);
  return response;
}

Result<EngineRequest> EngineRequestFromJson(const Json& json) {
  if (!json.IsObject()) {
    return Status::Malformed("request must be a JSON object");
  }
  EngineRequest request;
  request.id = json.GetInt("id", 0);
  const Json* command = json.Find("command");
  if (command == nullptr || !command->IsString()) {
    return Status::Malformed("request needs a string \"command\"");
  }
  request.command = command->AsString();
  request.session = json.GetString("session");
  request.mapping = json.GetString("mapping");
  request.mapping2 = json.GetString("mapping2");
  request.instance = json.GetString("instance");
  request.delta = json.GetString("delta");
  request.query = json.GetString("query");
  request.reverse = json.GetString("reverse");
  request.instance_ref = json.GetString("instance_ref");
  request.name = json.GetString("name");
  request.path = json.GetString("path");
  request.run = json.GetString("run");

  const Json* options = json.Find("options");
  if (options != nullptr) {
    if (!options->IsObject()) {
      return Status::Malformed("request \"options\" must be an object");
    }
    auto take_uint = [&](std::string_view key,
                         std::optional<uint64_t>* out) -> Status {
      const Json* v = options->Find(key);
      if (v == nullptr) return Status::OK();
      if (!v->IsNumber() || v->AsInt() < 0) {
        return Status::InvalidArgument("option \"" + std::string(key) +
                                       "\" must be a non-negative integer");
      }
      *out = static_cast<uint64_t>(v->AsInt());
      return Status::OK();
    };
    MAPINV_RETURN_NOT_OK(take_uint("max_facts", &request.options.max_facts));
    MAPINV_RETURN_NOT_OK(take_uint("max_worlds", &request.options.max_worlds));
    MAPINV_RETURN_NOT_OK(
        take_uint("max_disjuncts", &request.options.max_disjuncts));
    MAPINV_RETURN_NOT_OK(take_uint("max_rules", &request.options.max_rules));
    std::optional<uint64_t> scratch;
    MAPINV_RETURN_NOT_OK(take_uint("deadline_ms", &scratch));
    if (scratch) request.options.deadline_ms = static_cast<int64_t>(*scratch);
    scratch.reset();
    MAPINV_RETURN_NOT_OK(take_uint("threads", &scratch));
    if (scratch) {
      if (*scratch > (1u << 16)) {
        return Status::InvalidArgument("option \"threads\" out of range");
      }
      request.options.threads = static_cast<int>(*scratch);
    }
    if (const Json* v = options->Find("oblivious"); v != nullptr) {
      if (!v->IsBool()) {
        return Status::InvalidArgument("option \"oblivious\" must be a bool");
      }
      request.options.oblivious = v->AsBool();
    }
    if (const Json* v = options->Find("minimize"); v != nullptr) {
      if (!v->IsBool()) {
        return Status::InvalidArgument("option \"minimize\" must be a bool");
      }
      request.options.minimize = v->AsBool();
    }
    MAPINV_RETURN_NOT_OK(
        take_uint("memory_budget_bytes", &request.options.memory_budget_bytes));
    MAPINV_RETURN_NOT_OK(take_uint("vector_max_plan_steps",
                                   &request.options.vector_max_plan_steps));
    if (const Json* v = options->Find("spill_dir"); v != nullptr) {
      if (!v->IsString()) {
        return Status::InvalidArgument("option \"spill_dir\" must be a string");
      }
      request.options.spill_dir = v->AsString();
    }
    if (const Json* v = options->Find("checkpoint_dir"); v != nullptr) {
      if (!v->IsString()) {
        return Status::InvalidArgument(
            "option \"checkpoint_dir\" must be a string");
      }
      request.options.checkpoint_dir = v->AsString();
    }
    MAPINV_RETURN_NOT_OK(
        take_uint("checkpoint_every", &request.options.checkpoint_every));
    if (const Json* v = options->Find("resume"); v != nullptr) {
      if (!v->IsBool()) {
        return Status::InvalidArgument("option \"resume\" must be a bool");
      }
      request.options.resume = v->AsBool();
    }
    if (const Json* v = options->Find("on_exhausted"); v != nullptr) {
      if (v->IsString() && v->AsString() == "fail") {
        request.options.on_exhausted = OnExhausted::kFail;
      } else if (v->IsString() && v->AsString() == "partial") {
        request.options.on_exhausted = OnExhausted::kPartial;
      } else {
        return Status::InvalidArgument(
            "option \"on_exhausted\" must be \"fail\" or \"partial\"");
      }
    }
  }
  return request;
}

Json EngineRequestToJson(const EngineRequest& request) {
  Json json = Json::MakeObject();
  json.Set("id", Json(request.id));
  json.Set("command", Json(request.command));
  if (!request.session.empty()) json.Set("session", Json(request.session));
  if (!request.mapping.empty()) json.Set("mapping", Json(request.mapping));
  if (!request.mapping2.empty()) json.Set("mapping2", Json(request.mapping2));
  if (!request.instance.empty()) json.Set("instance", Json(request.instance));
  if (!request.delta.empty()) json.Set("delta", Json(request.delta));
  if (!request.query.empty()) json.Set("query", Json(request.query));
  if (!request.reverse.empty()) json.Set("reverse", Json(request.reverse));
  if (!request.instance_ref.empty()) {
    json.Set("instance_ref", Json(request.instance_ref));
  }
  if (!request.name.empty()) json.Set("name", Json(request.name));
  if (!request.path.empty()) json.Set("path", Json(request.path));
  if (!request.run.empty()) json.Set("run", Json(request.run));

  Json options = Json::MakeObject();
  const RequestOptions& o = request.options;
  if (o.max_facts) options.Set("max_facts", Json(*o.max_facts));
  if (o.max_worlds) options.Set("max_worlds", Json(*o.max_worlds));
  if (o.max_disjuncts) options.Set("max_disjuncts", Json(*o.max_disjuncts));
  if (o.max_rules) options.Set("max_rules", Json(*o.max_rules));
  if (o.deadline_ms) options.Set("deadline_ms", Json(*o.deadline_ms));
  if (o.threads) options.Set("threads", Json(static_cast<int64_t>(*o.threads)));
  if (o.oblivious) options.Set("oblivious", Json(*o.oblivious));
  if (o.minimize) options.Set("minimize", Json(*o.minimize));
  if (o.on_exhausted) {
    options.Set("on_exhausted",
                Json(*o.on_exhausted == OnExhausted::kPartial ? "partial"
                                                              : "fail"));
  }
  if (o.memory_budget_bytes) {
    options.Set("memory_budget_bytes", Json(*o.memory_budget_bytes));
  }
  if (o.spill_dir) options.Set("spill_dir", Json(*o.spill_dir));
  if (o.vector_max_plan_steps) {
    options.Set("vector_max_plan_steps", Json(*o.vector_max_plan_steps));
  }
  if (o.checkpoint_dir) options.Set("checkpoint_dir", Json(*o.checkpoint_dir));
  if (o.checkpoint_every) {
    options.Set("checkpoint_every", Json(*o.checkpoint_every));
  }
  if (o.resume) options.Set("resume", Json(*o.resume));
  if (!options.AsObject().empty()) json.Set("options", std::move(options));
  return json;
}

Json StatsToJson(const ExecStatsSnapshot& s) {
  Json json = Json::MakeObject();
  json.Set("chase_steps", Json(s.chase_steps));
  json.Set("hom_searches", Json(s.hom_searches));
  json.Set("hom_backtracks", Json(s.hom_backtracks));
  json.Set("hom_plans_compiled", Json(s.hom_plans_compiled));
  json.Set("hom_bucket_candidates", Json(s.hom_bucket_candidates));
  json.Set("hom_slot_bindings", Json(s.hom_slot_bindings));
  json.Set("cache_hits", Json(s.cache_hits));
  json.Set("cache_misses", Json(s.cache_misses));
  json.Set("tuples_arena_bytes", Json(s.tuples_arena_bytes));
  json.Set("index_catchup_rows", Json(s.index_catchup_rows));
  json.Set("vector_blocks_scanned", Json(s.vector_blocks_scanned));
  json.Set("vector_rows_scanned", Json(s.vector_rows_scanned));
  json.Set("vector_rows_selected", Json(s.vector_rows_selected));
  json.Set("bulk_rows_appended", Json(s.bulk_rows_appended));
  json.Set("worlds_forked", Json(s.worlds_forked));
  json.Set("segments_spilled", Json(s.segments_spilled));
  json.Set("segments_faulted", Json(s.segments_faulted));
  json.Set("arena_resident_bytes", Json(s.arena_resident_bytes));
  json.Set("vector_plan_fallbacks", Json(s.vector_plan_fallbacks));
  json.Set("segment_faultin_retries", Json(s.segment_faultin_retries));
  json.Set("jobs_checkpointed", Json(s.jobs_checkpointed));
  json.Set("worlds_resumed", Json(s.worlds_resumed));
  json.Set("checkpoint_bytes", Json(s.checkpoint_bytes));
  json.Set("partial", Json(s.partial));
  return json;
}

Json ResponseToJson(const EngineResponse& response) {
  Json json = Json::MakeObject();
  json.Set("id", Json(response.id));
  if (response.status.ok()) {
    json.Set("status", Json("ok"));
    json.Set("kind", Json(ResultKindName(response.kind)));
    json.Set("result", Json(response.result));
  } else {
    json.Set("status", Json("error"));
    json.Set("code", Json(StatusCodeName(response.status.code())));
    json.Set("message", Json(response.status.message()));
  }
  json.Set("partial", Json(response.partial));
  json.Set("stats", StatsToJson(response.stats));
  return json;
}

}  // namespace mapinv
