#include "engine/trace.h"

#include <cstdio>
#include <utility>

namespace mapinv {

namespace {

ExecStatsSnapshot Delta(const ExecStatsSnapshot& now,
                        const ExecStatsSnapshot& then) {
  ExecStatsSnapshot d;
  // `partial` is a flag, not a counter: a span is partial if the flag is set
  // at exit (it is sticky within a run, so "set at exit" covers "set during
  // the span or before it" — good enough for "was anything cut short").
  d.partial = now.partial;
  d.chase_steps = now.chase_steps - then.chase_steps;
  d.hom_backtracks = now.hom_backtracks - then.hom_backtracks;
  d.hom_searches = now.hom_searches - then.hom_searches;
  d.hom_plans_compiled = now.hom_plans_compiled - then.hom_plans_compiled;
  d.hom_bucket_candidates =
      now.hom_bucket_candidates - then.hom_bucket_candidates;
  d.hom_slot_bindings = now.hom_slot_bindings - then.hom_slot_bindings;
  d.cache_hits = now.cache_hits - then.cache_hits;
  d.cache_misses = now.cache_misses - then.cache_misses;
  // tuples_arena_bytes is a monotonic high-water mark, so its delta reads as
  // "footprint growth observed during the span".
  d.tuples_arena_bytes = now.tuples_arena_bytes - then.tuples_arena_bytes;
  d.index_catchup_rows = now.index_catchup_rows - then.index_catchup_rows;
  d.vector_blocks_scanned =
      now.vector_blocks_scanned - then.vector_blocks_scanned;
  d.vector_rows_scanned = now.vector_rows_scanned - then.vector_rows_scanned;
  d.vector_rows_selected =
      now.vector_rows_selected - then.vector_rows_selected;
  d.bulk_rows_appended = now.bulk_rows_appended - then.bulk_rows_appended;
  d.worlds_forked = now.worlds_forked - then.worlds_forked;
  d.segments_spilled = now.segments_spilled - then.segments_spilled;
  d.segments_faulted = now.segments_faulted - then.segments_faulted;
  // Like tuples_arena_bytes: a monotonic high-water mark, so the delta is
  // "resident-footprint growth observed during the span" and spans still
  // telescope to the engine total.
  d.arena_resident_bytes = now.arena_resident_bytes - then.arena_resident_bytes;
  d.vector_plan_fallbacks =
      now.vector_plan_fallbacks - then.vector_plan_fallbacks;
  d.segment_faultin_retries =
      now.segment_faultin_retries - then.segment_faultin_retries;
  d.jobs_checkpointed = now.jobs_checkpointed - then.jobs_checkpointed;
  d.worlds_resumed = now.worlds_resumed - then.worlds_resumed;
  d.checkpoint_bytes = now.checkpoint_bytes - then.checkpoint_bytes;
  return d;
}

void Accumulate(ExecStatsSnapshot& into, const ExecStatsSnapshot& d) {
  into.partial = into.partial || d.partial;
  into.chase_steps += d.chase_steps;
  into.hom_backtracks += d.hom_backtracks;
  into.hom_searches += d.hom_searches;
  into.hom_plans_compiled += d.hom_plans_compiled;
  into.hom_bucket_candidates += d.hom_bucket_candidates;
  into.hom_slot_bindings += d.hom_slot_bindings;
  into.cache_hits += d.cache_hits;
  into.cache_misses += d.cache_misses;
  into.tuples_arena_bytes += d.tuples_arena_bytes;
  into.index_catchup_rows += d.index_catchup_rows;
  into.vector_blocks_scanned += d.vector_blocks_scanned;
  into.vector_rows_scanned += d.vector_rows_scanned;
  into.vector_rows_selected += d.vector_rows_selected;
  into.bulk_rows_appended += d.bulk_rows_appended;
  into.worlds_forked += d.worlds_forked;
  into.segments_spilled += d.segments_spilled;
  into.segments_faulted += d.segments_faulted;
  into.arena_resident_bytes += d.arena_resident_bytes;
  into.vector_plan_fallbacks += d.vector_plan_fallbacks;
  into.segment_faultin_retries += d.segment_faultin_retries;
  into.jobs_checkpointed += d.jobs_checkpointed;
  into.worlds_resumed += d.worlds_resumed;
  into.checkpoint_bytes += d.checkpoint_bytes;
}

std::string FormatMs(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", ms);
  return buf;
}

void AppendText(const TraceSpan& span, int depth, std::string& out) {
  out.append(static_cast<size_t>(depth) * 2, ' ');
  out += span.name;
  if (span.count > 1) out += " x" + std::to_string(span.count);
  out += "  " + FormatMs(span.wall_ms) + " ms";
  out += "  chase_steps=" + std::to_string(span.stats.chase_steps);
  out += " hom_searches=" + std::to_string(span.stats.hom_searches);
  out += " hom_backtracks=" + std::to_string(span.stats.hom_backtracks);
  out += " hom_plans_compiled=" +
         std::to_string(span.stats.hom_plans_compiled);
  out += " hom_bucket_candidates=" +
         std::to_string(span.stats.hom_bucket_candidates);
  out += " hom_slot_bindings=" + std::to_string(span.stats.hom_slot_bindings);
  out += " cache_hits=" + std::to_string(span.stats.cache_hits);
  out += " cache_misses=" + std::to_string(span.stats.cache_misses);
  out += " tuples_arena_bytes=" +
         std::to_string(span.stats.tuples_arena_bytes);
  out += " index_catchup_rows=" +
         std::to_string(span.stats.index_catchup_rows);
  out += " vector_blocks_scanned=" +
         std::to_string(span.stats.vector_blocks_scanned);
  out += " vector_rows_scanned=" +
         std::to_string(span.stats.vector_rows_scanned);
  out += " vector_rows_selected=" +
         std::to_string(span.stats.vector_rows_selected);
  out += " bulk_rows_appended=" +
         std::to_string(span.stats.bulk_rows_appended);
  out += " worlds_forked=" + std::to_string(span.stats.worlds_forked);
  out += " segments_spilled=" + std::to_string(span.stats.segments_spilled);
  out += " segments_faulted=" + std::to_string(span.stats.segments_faulted);
  out += " arena_resident_bytes=" +
         std::to_string(span.stats.arena_resident_bytes);
  out += " vector_plan_fallbacks=" +
         std::to_string(span.stats.vector_plan_fallbacks);
  out += " segment_faultin_retries=" +
         std::to_string(span.stats.segment_faultin_retries);
  out += " jobs_checkpointed=" + std::to_string(span.stats.jobs_checkpointed);
  out += " worlds_resumed=" + std::to_string(span.stats.worlds_resumed);
  out += " checkpoint_bytes=" + std::to_string(span.stats.checkpoint_bytes);
  if (span.stats.partial) out += " partial=true";
  out += "\n";
  for (const auto& child : span.children) {
    AppendText(*child, depth + 1, out);
  }
}

void AppendStatsJson(const ExecStatsSnapshot& stats, std::string& out) {
  out += "\"chase_steps\":" + std::to_string(stats.chase_steps);
  out += ",\"hom_searches\":" + std::to_string(stats.hom_searches);
  out += ",\"hom_backtracks\":" + std::to_string(stats.hom_backtracks);
  out += ",\"hom_plans_compiled\":" +
         std::to_string(stats.hom_plans_compiled);
  out += ",\"hom_bucket_candidates\":" +
         std::to_string(stats.hom_bucket_candidates);
  out += ",\"hom_slot_bindings\":" + std::to_string(stats.hom_slot_bindings);
  out += ",\"cache_hits\":" + std::to_string(stats.cache_hits);
  out += ",\"cache_misses\":" + std::to_string(stats.cache_misses);
  out += ",\"tuples_arena_bytes\":" +
         std::to_string(stats.tuples_arena_bytes);
  out += ",\"index_catchup_rows\":" +
         std::to_string(stats.index_catchup_rows);
  out += ",\"vector_blocks_scanned\":" +
         std::to_string(stats.vector_blocks_scanned);
  out += ",\"vector_rows_scanned\":" +
         std::to_string(stats.vector_rows_scanned);
  out += ",\"vector_rows_selected\":" +
         std::to_string(stats.vector_rows_selected);
  out += ",\"bulk_rows_appended\":" +
         std::to_string(stats.bulk_rows_appended);
  out += ",\"worlds_forked\":" + std::to_string(stats.worlds_forked);
  out += ",\"segments_spilled\":" + std::to_string(stats.segments_spilled);
  out += ",\"segments_faulted\":" + std::to_string(stats.segments_faulted);
  out += ",\"arena_resident_bytes\":" +
         std::to_string(stats.arena_resident_bytes);
  out += ",\"vector_plan_fallbacks\":" +
         std::to_string(stats.vector_plan_fallbacks);
  out += ",\"segment_faultin_retries\":" +
         std::to_string(stats.segment_faultin_retries);
  out += ",\"jobs_checkpointed\":" + std::to_string(stats.jobs_checkpointed);
  out += ",\"worlds_resumed\":" + std::to_string(stats.worlds_resumed);
  out += ",\"checkpoint_bytes\":" + std::to_string(stats.checkpoint_bytes);
  out += ",\"partial\":";
  out += stats.partial ? "true" : "false";
}

void AppendJson(const TraceSpan& span, std::string& out) {
  out += "{\"name\":\"" + span.name + "\"";
  out += ",\"count\":" + std::to_string(span.count);
  out += ",\"wall_ms\":" + FormatMs(span.wall_ms);
  out += ",\"stats\":{";
  AppendStatsJson(span.stats, out);
  out += "},\"children\":[";
  for (size_t i = 0; i < span.children.size(); ++i) {
    if (i > 0) out += ",";
    AppendJson(*span.children[i], out);
  }
  out += "]}";
}

}  // namespace

Tracer::Tracer() { root_.name = "trace"; }

void Tracer::Begin(std::string_view phase, const ExecStats* stats) {
  TraceSpan* parent = open_.empty() ? &root_ : open_.back().span;
  TraceSpan* span = nullptr;
  // Re-entering a phase under the same parent accumulates into the existing
  // child, keeping loop-heavy pipelines to one node per phase.
  for (const auto& child : parent->children) {
    if (child->name == phase) {
      span = child.get();
      break;
    }
  }
  if (span == nullptr) {
    auto owned = std::make_unique<TraceSpan>();
    owned->name = std::string(phase);
    span = owned.get();
    parent->children.push_back(std::move(owned));
  }
  ++span->count;
  Frame frame;
  frame.span = span;
  frame.start = std::chrono::steady_clock::now();
  frame.stats = stats;
  if (stats != nullptr) frame.at_entry = stats->Snapshot();
  open_.push_back(frame);
}

void Tracer::End() {
  if (open_.empty()) return;
  Frame frame = open_.back();
  open_.pop_back();
  const auto elapsed = std::chrono::steady_clock::now() - frame.start;
  frame.span->wall_ms +=
      std::chrono::duration<double, std::milli>(elapsed).count();
  if (frame.stats != nullptr) {
    Accumulate(frame.span->stats,
               Delta(frame.stats->Snapshot(), frame.at_entry));
  }
}

void Tracer::Reset() {
  open_.clear();
  root_ = TraceSpan{};
  root_.name = "trace";
}

std::string Tracer::ToText() const {
  std::string out;
  for (const auto& child : root_.children) {
    AppendText(*child, 0, out);
  }
  if (out.empty()) out = "(no spans recorded)\n";
  return out;
}

std::string Tracer::ToJson() const {
  std::string out;
  TraceSpan summary;
  summary.name = root_.name;
  summary.count = 1;
  for (const auto& child : root_.children) {
    summary.wall_ms += child->wall_ms;
    Accumulate(summary.stats, child->stats);
  }
  out += "{\"name\":\"" + summary.name + "\"";
  out += ",\"count\":" + std::to_string(summary.count);
  out += ",\"wall_ms\":" + FormatMs(summary.wall_ms);
  out += ",\"stats\":{";
  AppendStatsJson(summary.stats, out);
  out += "},\"children\":[";
  for (size_t i = 0; i < root_.children.size(); ++i) {
    if (i > 0) out += ",";
    AppendJson(*root_.children[i], out);
  }
  out += "]}";
  return out;
}

Status PhaseExhausted(std::string_view phase, std::string_view detail) {
  return Status::ResourceExhausted("phase '" + std::string(phase) +
                                   "': " + std::string(detail));
}

Status PhaseCancelled(std::string_view phase) {
  return Status::Cancelled("phase '" + std::string(phase) + "': cancelled");
}

}  // namespace mapinv
