/// \file parallel_chase.h
/// \brief Deterministic (optionally parallel) chase-trigger collection.
///
/// The chase engines spend almost all their time enumerating premise
/// homomorphisms (the *triggers*). CollectTriggers partitions that
/// enumeration so it can run on a thread pool while producing the trigger
/// list in **exactly** the order a sequential HomSearch::ForEachHom would:
///
///   1. pick the initial atom A* by the plan compiler's first-step rule
///      under the empty assignment (most constant terms, ties to the
///      smaller relation, then to the earlier atom — see hom_plan.h);
///   2. scan A*'s relation tuples in ascending insertion order, binding
///      A*'s terms against each tuple (the compiled executor's bucket
///      iteration visits the same matching subsequence in the same order);
///   3. for each successful binding, run the remaining atoms through one
///      plan compiled before the fan-out (bound set = A*'s variables) —
///      the same steps the full-premise plan would take after A*, hence
///      the same enumeration order.
///
/// Step 2's candidate range is split into contiguous chunks with one output
/// slot per chunk; slots are concatenated in chunk order, so the result is
/// independent of how chunks are scheduled. The **same chunked code path
/// runs for every thread count** — threads == 1 simply executes the chunks
/// inline — which is what makes multi-thread output bit-identical to
/// single-thread, and both identical to the historical sequential chase.
///
/// Under `options.vectorized` (the default) each chunk runs batch-at-a-time:
/// the pinned atom's seed checks and the remaining-premise plan execute
/// through the selection-vector executor of eval/vector_plan.h, and triggers
/// land directly in the TriggerBatch value matrix — no per-trigger hash
/// maps. `options.vectorized = false` retains the tuple-at-a-time scan as a
/// differential oracle; both paths produce bit-identical batches.
///
/// Callers must not grow the instance while a collection is in flight;
/// CollectTriggers prewarms the search indexes and compiles the shared
/// remaining-premise plan before fanning out, so the parallel section only
/// reads per-HomSearch state.

#ifndef MAPINV_ENGINE_PARALLEL_CHASE_H_
#define MAPINV_ENGINE_PARALLEL_CHASE_H_

#include <algorithm>
#include <vector>

#include "base/status.h"
#include "data/instance.h"
#include "engine/execution_options.h"
#include "eval/hom.h"
#include "logic/cq.h"

namespace mapinv {

/// \brief A batch of chase triggers in columnar form: one row per trigger,
/// one column per distinct premise variable (sorted ascending by VarId).
///
/// The fire loops consume rows positionally — `Row(i)[ColumnOf(v)]` replaces
/// the historical `h.at(v)` — so firing a trigger touches no hash map.
/// AssignmentAt materialises the historical map form for callers that still
/// want it (tests, world forks).
struct TriggerBatch {
  /// Distinct premise variables, sorted ascending; the column order.
  std::vector<VarId> vars;
  /// Row-major values, stride = vars.size().
  std::vector<Value> values;
  /// Number of triggers. An empty premise has one all-empty row (the empty
  /// assignment) with zero columns.
  size_t rows = 0;

  const Value* Row(size_t i) const { return values.data() + i * vars.size(); }

  /// Column index of `v`; `v` must be one of `vars`.
  size_t ColumnOf(VarId v) const {
    return static_cast<size_t>(
        std::lower_bound(vars.begin(), vars.end(), v) - vars.begin());
  }

  Assignment AssignmentAt(size_t i) const {
    Assignment h;
    h.reserve(vars.size());
    const Value* row = Row(i);
    for (size_t j = 0; j < vars.size(); ++j) h.emplace(vars[j], row[j]);
    return h;
  }
};

/// \brief Collects every homomorphism of `premise` into `instance` (which
/// must be the instance `search` was built over), in the exact order the
/// sequential backtracking search reports them.
///
/// `options.threads` > 1 fans the enumeration out on `options.pool` (or the
/// process-shared pool). `options.vectorized` selects the batch-at-a-time
/// scan (`options.vector_batch` rows per block); the scalar path yields the
/// same batch bit-for-bit. Fails with kResourceExhausted once `deadline`
/// expires, and propagates validation errors (unknown relation, arity
/// mismatch, function terms) exactly like ForEachHom.
Result<TriggerBatch> CollectTriggers(const HomSearch& search,
                                     const Instance& instance,
                                     const std::vector<Atom>& premise,
                                     const HomConstraints& constraints,
                                     const ExecutionOptions& options,
                                     const ExecDeadline& deadline);

/// \brief Per-relation row counts marking the frontier between "already
/// chased" and "appended since" rows of an append-only instance. Indexed by
/// RelationId; a relation beyond the vector appeared after the watermark was
/// taken, so every one of its rows counts as new.
struct DeltaWatermark {
  std::vector<size_t> rows;

  /// True if `ref` in `relation` is at or past the watermark (an appended
  /// row).
  bool IsNew(RelationId relation, TupleRef ref) const {
    const size_t mark = relation < rows.size() ? rows[relation] : 0;
    return static_cast<size_t>(ref) >= mark;
  }
};

/// \brief The watermark capturing every current row of `instance` as old.
DeltaWatermark WatermarkOf(const Instance& instance);

/// \brief Collects exactly the homomorphisms of `premise` into `instance`
/// that map at least one premise atom to a row appended after `watermark` —
/// the *delta triggers* of semi-naïve evaluation.
///
/// The enumeration partitions by the first premise position (in premise
/// order) whose image is a new row: for each position d, the compiled
/// remaining-premise HomPlan runs with atom d pinned to the new-row slice,
/// and a candidate is kept only when every earlier atom's image row predates
/// the watermark. Each delta trigger is therefore produced exactly once, in
/// a deterministic order (ascending pinned position, then the pinned
/// relation's insertion order, independent of thread count).
///
/// With an all-zero watermark this returns every trigger (position 0 takes
/// the whole relation and later positions contribute nothing); an empty
/// premise has no delta triggers (its one empty assignment touches no row).
Result<TriggerBatch> CollectTriggersDelta(
    const HomSearch& search, const Instance& instance,
    const std::vector<Atom>& premise, const HomConstraints& constraints,
    const DeltaWatermark& watermark, const ExecutionOptions& options,
    const ExecDeadline& deadline);

/// \brief Resolves the fresh-symbol scope for an operation reading `input`:
/// the process-global context when `options.symbols` is null (historical
/// behaviour), otherwise `options.symbols` bumped past every null label
/// occurring in `input`, so an engine-scoped context that restarts at zero
/// can never re-issue a label already present in the data it extends.
SymbolContext& ResolveSymbols(const ExecutionOptions& options,
                              const Instance& input);

}  // namespace mapinv

#endif  // MAPINV_ENGINE_PARALLEL_CHASE_H_
