// E8 — Query rewriting, the Section 4 black box. Cost is Π over query atoms
// of the number of matching rule heads: exponential in the query size,
// polynomial in the mapping size for fixed queries.

#include <benchmark/benchmark.h>

#include "mapgen/generators.h"
#include "rewrite/rewrite.h"

namespace mapinv {
namespace {

void BM_Rewrite_QueryAtoms(benchmark::State& state) {
  // n = 2 producers per relation, query with k atoms: (n+1)^k combinations.
  const int k = static_cast<int>(state.range(0));
  TgdMapping mapping = ExponentialFamilyMapping(2, k);
  ConjunctiveQuery q;
  q.head = {InternVar("x")};
  for (int j = 0; j < k; ++j) {
    q.atoms.push_back(Atom::Vars("T" + std::to_string(j), {"x"}));
  }
  ExecutionOptions options;
  options.minimize = false;
  size_t disjuncts = 0;
  for (auto _ : state) {
    UnionCq rewriting = RewriteOverSource(mapping, q, options).ValueOrDie();
    disjuncts = rewriting.disjuncts.size();
    benchmark::DoNotOptimize(rewriting);
  }
  state.counters["query_atoms"] = k;
  state.counters["disjuncts"] = static_cast<double>(disjuncts);
}

void BM_Rewrite_MappingSize(benchmark::State& state) {
  // Fixed one-atom query, growing number of (mostly irrelevant) tgds.
  const int tgds = static_cast<int>(state.range(0));
  TgdMapping mapping = CopyMapping(tgds, 2);
  ConjunctiveQuery q;
  q.head = {InternVar("x"), InternVar("y")};
  q.atoms = {Atom::Vars("T0", {"x", "y"})};
  size_t disjuncts = 0;
  for (auto _ : state) {
    UnionCq rewriting = RewriteOverSource(mapping, q).ValueOrDie();
    disjuncts = rewriting.disjuncts.size();
    benchmark::DoNotOptimize(rewriting);
  }
  state.counters["tgds"] = tgds;
  state.counters["disjuncts"] = static_cast<double>(disjuncts);
}

void BM_Rewrite_MinimizationCost(benchmark::State& state) {
  // Minimisation prunes subsumed disjuncts with pairwise containment
  // checks; duplicated tgds maximise the pruning work.
  const int copies = static_cast<int>(state.range(0));
  std::vector<Tgd> tgds;
  Tgd t;
  t.premise = {Atom::Vars("A", {"x"})};
  t.conclusion = {Atom::Vars("D", {"x"})};
  for (int i = 0; i < copies; ++i) tgds.push_back(t);
  TgdMapping mapping(Schema{{"A", 1}}, Schema{{"D", 1}}, tgds);
  ConjunctiveQuery q;
  q.head = {InternVar("x")};
  q.atoms = {Atom::Vars("D", {"x"}), Atom::Vars("D", {"x"})};
  size_t disjuncts = 0;
  for (auto _ : state) {
    UnionCq rewriting = RewriteOverSource(mapping, q).ValueOrDie();
    disjuncts = rewriting.disjuncts.size();
    benchmark::DoNotOptimize(rewriting);
  }
  state.counters["copies"] = copies;
  state.counters["disjuncts_after_min"] = static_cast<double>(disjuncts);
}

BENCHMARK(BM_Rewrite_QueryAtoms)
    ->DenseRange(1, 7)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Rewrite_MappingSize)
    ->Arg(2)->Arg(8)->Arg(32)->Arg(128)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Rewrite_MinimizationCost)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace mapinv
