// E7 — The conjunctive-query product (Section 4.1's EliminateDisjunctions
// core). The product of k disjuncts with a atoms each has up to a^k atoms;
// this is the residual cost of disjunction elimination after the rewriting.

#include <benchmark/benchmark.h>

#include "inversion/query_product.h"

namespace mapinv {
namespace {

// k disjuncts over one binary relation E, each a path of `atoms` edges with
// disjunct-local existential midpoints sharing the free endpoints x, y.
std::vector<std::vector<Atom>> PathDisjuncts(int k, int atoms) {
  std::vector<std::vector<Atom>> out;
  for (int d = 0; d < k; ++d) {
    std::vector<Atom> path;
    std::string prev = "x";
    for (int a = 0; a < atoms; ++a) {
      std::string next = (a + 1 == atoms)
                             ? "y"
                             : "m" + std::to_string(d) + "_" + std::to_string(a);
      path.push_back(Atom::Vars("E", {prev, next}));
      prev = next;
    }
    out.push_back(std::move(path));
  }
  return out;
}

void BM_Product_TwoQueries(benchmark::State& state) {
  const int atoms = static_cast<int>(state.range(0));
  std::vector<std::vector<Atom>> qs = PathDisjuncts(2, atoms);
  std::vector<VarId> shared = {InternVar("x"), InternVar("y")};
  size_t out_atoms = 0;
  for (auto _ : state) {
    std::vector<Atom> prod = ProductOfDisjuncts(shared, qs[0], qs[1]);
    out_atoms = prod.size();
    benchmark::DoNotOptimize(prod);
  }
  state.counters["atoms_per_disjunct"] = atoms;
  state.counters["product_atoms"] = static_cast<double>(out_atoms);
}

void BM_Product_ManyDisjuncts(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  std::vector<std::vector<Atom>> qs = PathDisjuncts(k, 3);
  std::vector<VarId> shared = {InternVar("x"), InternVar("y")};
  size_t out_atoms = 0;
  for (auto _ : state) {
    std::vector<Atom> prod = ProductOfMany(shared, qs);
    out_atoms = prod.size();
    benchmark::DoNotOptimize(prod);
  }
  state.counters["k"] = k;
  state.counters["product_atoms"] = static_cast<double>(out_atoms);
}

void BM_Product_Empty(benchmark::State& state) {
  // Disjuncts over different relations: the product is empty (and cheap) —
  // the dependency-dropping path of EliminateDisjunctions.
  std::vector<Atom> q1 = {Atom::Vars("A", {"x"})};
  std::vector<Atom> q2 = {Atom::Vars("B", {"x"})};
  std::vector<VarId> shared = {InternVar("x")};
  for (auto _ : state) {
    std::vector<Atom> prod = ProductOfDisjuncts(shared, q1, q2);
    benchmark::DoNotOptimize(prod);
  }
}

BENCHMARK(BM_Product_TwoQueries)
    ->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Product_ManyDisjuncts)
    ->DenseRange(2, 7)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Product_Empty)->Unit(benchmark::kNanosecond);

}  // namespace
}  // namespace mapinv
