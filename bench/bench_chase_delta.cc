// E8 — Incremental chase: absorbing a small append via ChaseDelta costs
// O(|delta|), not O(|source|).
//
// Compares, over the same grown source (base of N rows per relation plus a
// ~1% append), (a) ChaseDelta firing only the delta triggers into a fork of
// the already-chased target against (b) the full re-chase from scratch. The
// `wall` gap between BM_ChaseDelta_Absorb and BM_ChaseDelta_FullRechase at
// the same N is the headline number (≥5× expected well before N = 1024);
// `delta_rows`/`fired` pin what the incremental run actually did.

#include <algorithm>

#include <benchmark/benchmark.h>

#include "chase/chase_delta.h"
#include "chase/chase_tgd.h"
#include "chase/maintained.h"
#include "mapgen/generators.h"

namespace mapinv {
namespace {

constexpr int kChainLength = 3;

// Base of `tuples` rows per relation plus a ~1% appended slice, with the
// watermark between them. Shared by both sides of the comparison.
struct DeltaWorkload {
  TgdMapping mapping = ChainJoinMapping(kChainLength);
  Instance grown;
  DeltaWatermark mark;
  Instance base_target;
  SymbolContext symbols;
  int delta_rows = 0;

  explicit DeltaWorkload(int tuples)
      : grown(mapping.source), base_target(mapping.target) {
    delta_rows = std::max(1, tuples / 100);
    Instance base =
        GenerateInstance(*mapping.source, tuples, tuples / 4 + 2, 23);
    Instance delta =
        GenerateInstance(*mapping.source, delta_rows, tuples / 4 + 2, 57);
    ExecutionOptions options;
    options.symbols = &symbols;
    base_target = ChaseTgds(mapping, base, options).ValueOrDie();
    grown = base.Fork();
    mark = WatermarkOf(grown);
    (void)grown.UnionWith(delta);
  }
};

void BM_ChaseDelta_Absorb(benchmark::State& state) {
  DeltaWorkload w(static_cast<int>(state.range(0)));
  ExecutionOptions options;
  options.symbols = &w.symbols;
  size_t fired = 0;
  for (auto _ : state) {
    Instance target = w.base_target.Fork();
    ChaseProvenance provenance;
    bool complete =
        ChaseDelta(w.mapping, w.grown, w.mark, &target, &provenance, options)
            .ValueOrDie();
    benchmark::DoNotOptimize(complete);
    fired = provenance.FiredCount();
  }
  state.counters["tuples_in"] = static_cast<double>(state.range(0));
  state.counters["delta_rows"] = static_cast<double>(w.delta_rows);
  state.counters["fired"] = static_cast<double>(fired);
}

void BM_ChaseDelta_FullRechase(benchmark::State& state) {
  DeltaWorkload w(static_cast<int>(state.range(0)));
  size_t produced = 0;
  for (auto _ : state) {
    Instance target = ChaseTgds(w.mapping, w.grown).ValueOrDie();
    produced = target.TotalSize();
    benchmark::DoNotOptimize(target);
  }
  state.counters["tuples_in"] = static_cast<double>(state.range(0));
  state.counters["delta_rows"] = static_cast<double>(w.delta_rows);
  state.counters["facts_out"] = static_cast<double>(produced);
}

// The serving-layer wrapper end to end: parse-append one row, refresh.
void BM_MaintainedSolution_AppendRefresh(benchmark::State& state) {
  auto mapping =
      std::make_shared<TgdMapping>(ChainJoinMapping(kChainLength));
  const int tuples = static_cast<int>(state.range(0));
  MaintainedSolution maintained(mapping);
  Instance base = GenerateInstance(*mapping->source, tuples, tuples / 4 + 2, 23);
  (void)maintained.AppendInstance(base).ValueOrDie();
  (void)maintained.RefreshAndRender({}).ValueOrDie();
  int next = 1000000;  // appended values outside the generated domain
  for (auto _ : state) {
    std::string row = "{ R1(" + std::to_string(next) + "," +
                      std::to_string(next + 1) + ") }";
    ++next;
    (void)maintained.AppendText(row).ValueOrDie();
    std::string rendered = maintained.RefreshAndRender({}).ValueOrDie();
    benchmark::DoNotOptimize(rendered);
  }
  state.counters["tuples_in"] = static_cast<double>(tuples);
  state.counters["refreshes"] =
      static_cast<double>(maintained.CountersSnapshot().refreshes);
}

BENCHMARK(BM_ChaseDelta_Absorb)->Arg(256)->Arg(1024)->Arg(4096);
BENCHMARK(BM_ChaseDelta_FullRechase)->Arg(256)->Arg(1024)->Arg(4096);
BENCHMARK(BM_MaintainedSolution_AppendRefresh)->Arg(256)->Arg(1024);

}  // namespace
}  // namespace mapinv
