// E2 — PolySOInverse is polynomial in mapping size (Theorem 5.3).
//
// Sweeps: (a) the number of tgds at fixed shape, (b) premise width, (c)
// arity. Time and `output_size` should grow polynomially (at most
// quadratically in the rule count via the subsumption pairing).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "inversion/polyso.h"
#include "mapgen/generators.h"

namespace mapinv {
namespace {

void BM_PolySO_NumTgds(benchmark::State& state) {
  RandomMappingConfig config;
  config.seed = 7;
  config.num_tgds = static_cast<int>(state.range(0));
  config.source_relations = config.num_tgds;
  config.target_relations = std::max(2, config.num_tgds / 2);
  TgdMapping mapping = GenerateRandomMapping(config);
  size_t size = 0;
  for (auto _ : state) {
    SOInverseMapping inv = PolySOInverseOfTgds(mapping).ValueOrDie();
    benchmark::DoNotOptimize(inv);
    size = SOInverseSize(inv);
  }
  state.counters["tgds"] = static_cast<double>(config.num_tgds);
  state.counters["output_size"] = static_cast<double>(size);
}

void BM_PolySO_PremiseWidth(benchmark::State& state) {
  RandomMappingConfig config;
  config.seed = 11;
  config.num_tgds = 8;
  config.premise_atoms = static_cast<int>(state.range(0));
  config.premise_vars = config.premise_atoms + 1;
  TgdMapping mapping = GenerateRandomMapping(config);
  size_t size = 0;
  for (auto _ : state) {
    SOInverseMapping inv = PolySOInverseOfTgds(mapping).ValueOrDie();
    benchmark::DoNotOptimize(inv);
    size = SOInverseSize(inv);
  }
  state.counters["premise_atoms"] = static_cast<double>(config.premise_atoms);
  state.counters["output_size"] = static_cast<double>(size);
}

void BM_PolySO_Arity(benchmark::State& state) {
  const int arity = static_cast<int>(state.range(0));
  TgdMapping mapping = CopyMapping(8, arity);
  size_t size = 0;
  for (auto _ : state) {
    SOInverseMapping inv = PolySOInverseOfTgds(mapping).ValueOrDie();
    benchmark::DoNotOptimize(inv);
    size = SOInverseSize(inv);
  }
  state.counters["arity"] = static_cast<double>(arity);
  state.counters["output_size"] = static_cast<double>(size);
}

BENCHMARK(BM_PolySO_NumTgds)
    ->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_PolySO_PremiseWidth)
    ->DenseRange(1, 6)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_PolySO_Arity)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace mapinv
