// E3 — CQ-MaximumRecovery cost is dominated by the EliminateEqualities
// partition expansion: Bell(frontier width) dependencies per input tgd
// (Section 4.1).
//
// Workload: copy tgds R(x₁..x_w) → T(x₁..x_w) with growing width w. The
// `deps_out` counter should track Bell(w) = 1, 2, 5, 15, 52, 203, ...

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "inversion/cq_maximum_recovery.h"
#include "inversion/maximum_recovery.h"
#include "inversion/partitions.h"
#include "mapgen/generators.h"

namespace mapinv {
namespace {

void BM_CqMaxRecovery_FrontierWidth(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  TgdMapping mapping = CopyMapping(1, width);
  size_t deps = 0, atoms = 0;
  for (auto _ : state) {
    ReverseMapping rec = CqMaximumRecovery(mapping).ValueOrDie();
    benchmark::DoNotOptimize(rec);
    deps = rec.deps.size();
    atoms = ReverseMappingAtoms(rec);
  }
  state.counters["width"] = width;
  state.counters["bell"] = static_cast<double>(BellNumber(width));
  state.counters["deps_out"] = static_cast<double>(deps);
  state.counters["output_size"] = static_cast<double>(atoms);
}

void BM_CqMaxRecovery_NumTgds(benchmark::State& state) {
  // With fixed narrow frontiers, cost grows linearly in the tgd count.
  const int tgds = static_cast<int>(state.range(0));
  TgdMapping mapping = CopyMapping(tgds, 2);
  size_t deps = 0;
  for (auto _ : state) {
    ReverseMapping rec = CqMaximumRecovery(mapping).ValueOrDie();
    benchmark::DoNotOptimize(rec);
    deps = rec.deps.size();
  }
  state.counters["tgds"] = tgds;
  state.counters["deps_out"] = static_cast<double>(deps);
}

void BM_EliminateEqualities_Alone(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  TgdMapping mapping = CopyMapping(1, width);
  ReverseMapping rec = MaximumRecovery(mapping).ValueOrDie();
  size_t deps = 0;
  for (auto _ : state) {
    ReverseMapping out = EliminateEqualities(rec).ValueOrDie();
    benchmark::DoNotOptimize(out);
    deps = out.deps.size();
  }
  state.counters["width"] = width;
  state.counters["deps_out"] = static_cast<double>(deps);
}

BENCHMARK(BM_CqMaxRecovery_FrontierWidth)
    ->DenseRange(1, 7)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_CqMaxRecovery_NumTgds)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_EliminateEqualities_Alone)
    ->DenseRange(1, 7)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace mapinv
