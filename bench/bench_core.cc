// A1 (ablation) — instance cores: the cost of minimising canonical
// instances, and how much the oblivious chase over-produces relative to the
// standard chase (the redundancy that core computation removes).
//
// Not a paper table; this ablates the "which canonical instance" design
// choice called out in DESIGN.md (oblivious for equivalence checks,
// standard for exchange, core for the smallest universal solution).

#include <benchmark/benchmark.h>

#include "chase/chase_tgd.h"
#include "eval/instance_core.h"
#include "mapgen/generators.h"

namespace mapinv {
namespace {

void BM_Core_InterchangeableBlock(benchmark::State& state) {
  // n facts R(c, _Ni): all nulls interchangeable; the core keeps one fact.
  const int n = static_cast<int>(state.range(0));
  Instance inst(Schema{{"R", 2}});
  for (int i = 0; i < n; ++i) {
    inst.Add("R", {Value::Int(7), Value::FreshNull()}).ValueOrDie();
  }
  size_t core_size = 0;
  for (auto _ : state) {
    Instance core = CoreOfInstance(inst).ValueOrDie();
    core_size = core.TotalSize();
    benchmark::DoNotOptimize(core);
  }
  state.counters["facts_in"] = n;
  state.counters["core_size"] = static_cast<double>(core_size);
}

void BM_Core_LinkedChains(benchmark::State& state) {
  // n parallel 2-step null chains between the same constants: fold to one.
  const int n = static_cast<int>(state.range(0));
  Instance inst(Schema{{"R", 2}, {"S", 2}});
  for (int i = 0; i < n; ++i) {
    Value null = Value::FreshNull();
    inst.Add("R", {Value::Int(1), null}).ValueOrDie();
    inst.Add("S", {null, Value::Int(2)}).ValueOrDie();
  }
  size_t core_size = 0;
  for (auto _ : state) {
    Instance core = CoreOfInstance(inst).ValueOrDie();
    core_size = core.TotalSize();
    benchmark::DoNotOptimize(core);
  }
  state.counters["facts_in"] = 2.0 * n;
  state.counters["core_size"] = static_cast<double>(core_size);
}

void BM_Core_OfObliviousChase(benchmark::State& state) {
  // Oblivious chase redundancy removed by the core: A(x) -> ∃y P(x,y) plus
  // B(x) -> P(x,x), with overlapping A/B contents.
  const int n = static_cast<int>(state.range(0));
  Tgd t1;
  t1.premise = {Atom::Vars("A", {"x"})};
  t1.conclusion = {Atom::Vars("P", {"x", "y"})};
  Tgd t2;
  t2.premise = {Atom::Vars("B", {"x"})};
  t2.conclusion = {Atom::Vars("P", {"x", "x"})};
  TgdMapping m(Schema{{"A", 1}, {"B", 1}}, Schema{{"P", 2}}, {t1, t2});
  Instance source(*m.source);
  for (int i = 0; i < n; ++i) {
    source.AddInts("A", {i}).ValueOrDie();
    source.AddInts("B", {i}).ValueOrDie();
  }
  ExecutionOptions oblivious;
  oblivious.oblivious = true;
  Instance naive = ChaseTgds(m, source, oblivious).ValueOrDie();
  size_t core_size = 0;
  for (auto _ : state) {
    Instance core = CoreOfInstance(naive).ValueOrDie();
    core_size = core.TotalSize();
    benchmark::DoNotOptimize(core);
  }
  state.counters["oblivious_facts"] = static_cast<double>(naive.TotalSize());
  state.counters["core_size"] = static_cast<double>(core_size);
}

BENCHMARK(BM_Core_InterchangeableBlock)
    ->Arg(4)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Core_LinkedChains)
    ->Arg(4)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Core_OfObliviousChase)
    ->Arg(8)->Arg(32)->Arg(128)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace mapinv
