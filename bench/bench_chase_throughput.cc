// E6 — Chase-based data exchange with the inverse language costs the same
// as with plain tgds (Theorem 4.5: "the same good properties for data
// exchange as tgds").
//
// Compares facts/second of (a) the forward tgd chase, (b) the reverse chase
// whose premises carry C(·) and pairwise ≠, and (c) the SO-tgd chase, over
// the same growing instances. The `facts_per_sec` counters should be within
// small constant factors of each other.

#include <benchmark/benchmark.h>

#include "chase/chase_reverse.h"
#include "chase/chase_so.h"
#include "chase/chase_tgd.h"
#include "engine/trace.h"
#include "inversion/cq_maximum_recovery.h"
#include "mapgen/generators.h"
#include "rewrite/skolemize.h"

namespace mapinv {
namespace {

void BM_Chase_ForwardTgds(benchmark::State& state) {
  TgdMapping m = ChainJoinMapping(3);
  const int tuples = static_cast<int>(state.range(0));
  Instance source = GenerateInstance(*m.source, tuples, tuples / 4 + 2, 23);
  size_t produced = 0;
  for (auto _ : state) {
    Instance target = ChaseTgds(m, source).ValueOrDie();
    produced = target.TotalSize();
    benchmark::DoNotOptimize(target);
  }
  state.counters["tuples_in"] = tuples;
  state.counters["facts_out"] = static_cast<double>(produced);
  state.counters["facts_per_sec"] = benchmark::Counter(
      static_cast<double>(produced), benchmark::Counter::kIsIterationInvariantRate);
}

void BM_Chase_ReverseWithGuards(benchmark::State& state) {
  // Chase the canonical target back through the CQ-maximum recovery: the
  // reverse dependencies carry C(·) on every frontier variable and the full
  // pairwise inequality set.
  TgdMapping m = ChainJoinMapping(3);
  ReverseMapping rec = CqMaximumRecovery(m).ValueOrDie();
  const int tuples = static_cast<int>(state.range(0));
  Instance source = GenerateInstance(*m.source, tuples, tuples / 4 + 2, 23);
  Instance target = ChaseTgds(m, source).ValueOrDie();
  size_t produced = 0;
  for (auto _ : state) {
    Instance back = ChaseReverse(rec, target).ValueOrDie();
    produced = back.TotalSize();
    benchmark::DoNotOptimize(back);
  }
  state.counters["tuples_in"] = static_cast<double>(target.TotalSize());
  state.counters["facts_out"] = static_cast<double>(produced);
  state.counters["facts_per_sec"] = benchmark::Counter(
      static_cast<double>(produced), benchmark::Counter::kIsIterationInvariantRate);
}

void BM_Chase_SOTgds(benchmark::State& state) {
  TgdMapping m = ChainJoinMapping(3);
  SOTgdMapping so = TgdsToPlainSOTgd(m).ValueOrDie();
  const int tuples = static_cast<int>(state.range(0));
  Instance source = GenerateInstance(*m.source, tuples, tuples / 4 + 2, 23);
  size_t produced = 0;
  for (auto _ : state) {
    Instance target = ChaseSOTgd(so, source).ValueOrDie();
    produced = target.TotalSize();
    benchmark::DoNotOptimize(target);
  }
  state.counters["tuples_in"] = tuples;
  state.counters["facts_out"] = static_cast<double>(produced);
  state.counters["facts_per_sec"] = benchmark::Counter(
      static_cast<double>(produced), benchmark::Counter::kIsIterationInvariantRate);
}

void BM_Chase_ObliviousVsStandard(benchmark::State& state) {
  // Ablation: the oblivious chase skips the satisfaction check but may
  // produce more facts.
  TgdMapping m = ProjectionMapping(4);
  const int tuples = static_cast<int>(state.range(0));
  Instance source = GenerateInstance(*m.source, tuples, tuples / 4 + 2, 29);
  ExecutionOptions options;
  options.oblivious = (state.range(1) == 1);
  size_t produced = 0;
  for (auto _ : state) {
    Instance target = ChaseTgds(m, source, options).ValueOrDie();
    produced = target.TotalSize();
    benchmark::DoNotOptimize(target);
  }
  state.counters["tuples_in"] = tuples;
  state.counters["oblivious"] = static_cast<double>(state.range(1));
  state.counters["facts_out"] = static_cast<double>(produced);
}

void BM_Chase_ThreadsSweep(benchmark::State& state) {
  // Parallel trigger enumeration: same chase, varying ExecutionOptions::
  // threads. Output is bit-identical across the sweep (engine_test asserts
  // this); here we measure throughput. Speedup requires real cores — on a
  // single-CPU host every point degenerates to sequential time plus a small
  // chunking overhead.
  TgdMapping m = ChainJoinMapping(3);
  const int tuples = static_cast<int>(state.range(0));
  Instance source = GenerateInstance(*m.source, tuples, tuples / 4 + 2, 23);
  ExecutionOptions options;
  options.threads = static_cast<int>(state.range(1));
  // Per-phase wall time via the trace layer: the chase splits into parallel
  // trigger enumeration (collect_triggers — the part the sweep scales) and
  // sequential firing (fire — the part it cannot).
  Tracer tracer;
  options.trace = &tracer;
  size_t produced = 0;
  for (auto _ : state) {
    Instance target = ChaseTgds(m, source, options).ValueOrDie();
    produced = target.TotalSize();
    benchmark::DoNotOptimize(target);
  }
  double collect_ms = 0;
  double fire_ms = 0;
  for (const auto& top : tracer.root().children) {
    for (const auto& child : top->children) {
      if (child->name == "collect_triggers") collect_ms += child->wall_ms;
      if (child->name == "fire") fire_ms += child->wall_ms;
    }
  }
  const double iters = static_cast<double>(state.iterations());
  state.counters["tuples_in"] = tuples;
  state.counters["threads"] = static_cast<double>(state.range(1));
  state.counters["facts_out"] = static_cast<double>(produced);
  state.counters["collect_ms_per_iter"] = collect_ms / iters;
  state.counters["fire_ms_per_iter"] = fire_ms / iters;
  state.counters["facts_per_sec"] = benchmark::Counter(
      static_cast<double>(produced), benchmark::Counter::kIsIterationInvariantRate);
}

BENCHMARK(BM_Chase_ForwardTgds)
    ->Arg(64)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Chase_ReverseWithGuards)
    ->Arg(64)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Chase_SOTgds)
    ->Arg(64)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Chase_ObliviousVsStandard)
    ->Args({256, 0})->Args({256, 1})->Args({1024, 0})->Args({1024, 1})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Chase_ThreadsSweep)
    ->Args({1024, 1})->Args({1024, 2})->Args({1024, 4})->Args({1024, 8})
    ->Unit(benchmark::kMicrosecond)->UseRealTime();

}  // namespace
}  // namespace mapinv
