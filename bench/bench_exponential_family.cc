// E1 — The exponential-size inverse family (paper §1, §5; [2]-extended).
//
// Workload: ExponentialFamilyMapping(n, k) = { A_{j,i}(x) → T_j(x) } ∪
// { B(x) → T_0(x) ∧ ... ∧ T_{k-1}(x) }. The Section 4 pipeline must rewrite
// the k-atom conclusion, giving (n+1)^k disjuncts, so its output (and time)
// grows exponentially in k; PolySOInverse (Section 5) stays polynomial.
// Claim reproduced: "these algorithms work in exponential time and produce
// inverse mappings of exponential size ... the first polynomial time
// algorithm" — compare the `output_size` counters of the two benchmarks as
// k grows.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "inversion/cq_maximum_recovery.h"
#include "inversion/maximum_recovery.h"
#include "inversion/polyso.h"
#include "mapgen/generators.h"

namespace mapinv {
namespace {

void BM_MaximumRecovery_ExpFamily(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int k = static_cast<int>(state.range(1));
  TgdMapping mapping = ExponentialFamilyMapping(n, k);
  ExecutionOptions options;
  options.minimize = false;  // measure the raw rewriting blow-up
  size_t disjuncts = 0, atoms = 0;
  for (auto _ : state) {
    ReverseMapping rec = MaximumRecovery(mapping, options).ValueOrDie();
    benchmark::DoNotOptimize(rec);
    disjuncts = ReverseMappingDisjuncts(rec);
    atoms = ReverseMappingAtoms(rec);
  }
  state.counters["n"] = n;
  state.counters["k"] = k;
  state.counters["disjuncts"] = static_cast<double>(disjuncts);
  state.counters["output_size"] = static_cast<double>(atoms);
}

void BM_PolySOInverse_ExpFamily(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int k = static_cast<int>(state.range(1));
  TgdMapping mapping = ExponentialFamilyMapping(n, k);
  size_t size = 0, rules = 0;
  for (auto _ : state) {
    SOInverseMapping inv = PolySOInverseOfTgds(mapping).ValueOrDie();
    benchmark::DoNotOptimize(inv);
    size = SOInverseSize(inv);
    rules = inv.inverse.rules.size();
  }
  state.counters["n"] = n;
  state.counters["k"] = k;
  state.counters["rules"] = static_cast<double>(rules);
  state.counters["output_size"] = static_cast<double>(size);
}

void ExpFamilyArgs(benchmark::internal::Benchmark* b) {
  for (int k = 1; k <= 6; ++k) b->Args({2, k});
  for (int n = 1; n <= 4; ++n) b->Args({n, 4});
}

BENCHMARK(BM_MaximumRecovery_ExpFamily)
    ->Apply(ExpFamilyArgs)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_PolySOInverse_ExpFamily)
    ->Apply(ExpFamilyArgs)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace mapinv
