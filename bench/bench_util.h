/// \file bench_util.h
/// \brief Shared helpers for the experiment harness (EXPERIMENTS.md).

#ifndef MAPINV_BENCH_BENCH_UTIL_H_
#define MAPINV_BENCH_BENCH_UTIL_H_

#include <cstddef>

#include "logic/mapping.h"

namespace mapinv {

/// Total atom count across a reverse mapping (premises + all disjuncts) —
/// the size measure used for the Section 4 outputs.
inline size_t ReverseMappingAtoms(const ReverseMapping& m) {
  size_t atoms = 0;
  for (const ReverseDependency& dep : m.deps) {
    atoms += dep.premise.size();
    for (const ReverseDisjunct& d : dep.disjuncts) atoms += d.atoms.size();
  }
  return atoms;
}

/// Total disjunct count across a reverse mapping.
inline size_t ReverseMappingDisjuncts(const ReverseMapping& m) {
  size_t disjuncts = 0;
  for (const ReverseDependency& dep : m.deps) disjuncts += dep.disjuncts.size();
  return disjuncts;
}

/// Size measure for PolySOInverse output: atoms plus (in)equality conjuncts
/// across all rules and disjuncts.
inline size_t SOInverseSize(const SOInverseMapping& m) {
  size_t size = 0;
  for (const SOInverseRule& rule : m.inverse.rules) {
    size += 1;  // premise atom
    for (const SOInvDisjunct& d : rule.disjuncts) {
      size += d.atoms.size() + d.equalities.size() + d.inequalities.size();
    }
  }
  return size;
}

}  // namespace mapinv

#endif  // MAPINV_BENCH_BENCH_UTIL_H_
