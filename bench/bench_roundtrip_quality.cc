// E4 — Recovery quality: how much of the source survives a round trip
// (Examples 3.1/3.3; Theorem 4.5's "same good properties for data
// exchange").
//
// Workload: the join mapping R ⋈ S → T over random instances of growing
// size. Three recoveries are compared: the naive per-column reverse mapping
// (Example 3.1's M'), the CQ-maximum recovery (Section 4), and — as the
// quality yardstick — the fraction of directly evaluable join answers that
// the round trip retains (`recovered_pct`). The CQ-maximum recovery must
// retain 100% of the join answers; the naive recovery retains none.

#include <benchmark/benchmark.h>

#include "chase/round_trip.h"
#include "eval/query_eval.h"
#include "inversion/cq_maximum_recovery.h"
#include "mapgen/generators.h"
#include "parser/parser.h"

namespace mapinv {
namespace {

TgdMapping JoinMapping() {
  return ParseTgdMapping("R(x,y), S(y,z) -> T(x,z)").ValueOrDie();
}

ConjunctiveQuery JoinQuery() {
  return ParseCq("Q(x,y) :- R(x,z), S(z,y)").ValueOrDie();
}

double RecoveredPct(const TgdMapping& m, const ReverseMapping& rec,
                    const Instance& source, const ConjunctiveQuery& q) {
  AnswerSet direct = EvaluateCq(q, source).ValueOrDie();
  if (direct.tuples.empty()) return 100.0;
  AnswerSet certain = RoundTripCertain(m, rec, source, q).ValueOrDie();
  return 100.0 * static_cast<double>(certain.tuples.size()) /
         static_cast<double>(direct.tuples.size());
}

void BM_RoundTrip_CqMaximumRecovery(benchmark::State& state) {
  TgdMapping m = JoinMapping();
  ReverseMapping rec = CqMaximumRecovery(m).ValueOrDie();
  const int tuples = static_cast<int>(state.range(0));
  Instance source = GenerateInstance(*m.source, tuples, tuples / 2 + 2, 3);
  ConjunctiveQuery q = JoinQuery();
  double pct = 0;
  for (auto _ : state) {
    pct = RecoveredPct(m, rec, source, q);
    benchmark::DoNotOptimize(pct);
  }
  state.counters["tuples"] = tuples;
  state.counters["recovered_pct"] = pct;
}

void BM_RoundTrip_NaiveRecovery(benchmark::State& state) {
  TgdMapping m = JoinMapping();
  ReverseMapping parsed =
      ParseReverseMapping("T(x,y), C(x), C(y) -> EXISTS u . R(x,u)")
          .ValueOrDie();
  ReverseMapping rec(m.target, m.source, parsed.deps);
  const int tuples = static_cast<int>(state.range(0));
  Instance source = GenerateInstance(*m.source, tuples, tuples / 2 + 2, 3);
  ConjunctiveQuery q = JoinQuery();
  double pct = 0;
  for (auto _ : state) {
    pct = RecoveredPct(m, rec, source, q);
    benchmark::DoNotOptimize(pct);
  }
  state.counters["tuples"] = tuples;
  state.counters["recovered_pct"] = pct;
}

void BM_RoundTrip_ProjectionLoss(benchmark::State& state) {
  // The projection mapping destroys a column: even the CQ-maximum recovery
  // cannot restore the two-column query, but it fully restores the
  // projected one. `col1_pct` = 100, `both_pct` = 0 at every size.
  TgdMapping m = ProjectionMapping(1);
  ReverseMapping rec = CqMaximumRecovery(m).ValueOrDie();
  const int tuples = static_cast<int>(state.range(0));
  Instance source = GenerateInstance(*m.source, tuples, tuples + 2, 5);
  ConjunctiveQuery col1 = ParseCq("Q(x) :- R0(x,y)").ValueOrDie();
  ConjunctiveQuery both = ParseCq("Q(x,y) :- R0(x,y)").ValueOrDie();
  double col1_pct = 0, both_pct = 0;
  for (auto _ : state) {
    col1_pct = RecoveredPct(m, rec, source, col1);
    both_pct = RecoveredPct(m, rec, source, both);
    benchmark::DoNotOptimize(col1_pct);
  }
  state.counters["tuples"] = tuples;
  state.counters["col1_pct"] = col1_pct;
  state.counters["both_pct"] = both_pct;
}

BENCHMARK(BM_RoundTrip_CqMaximumRecovery)
    ->Arg(4)->Arg(8)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_RoundTrip_NaiveRecovery)
    ->Arg(4)->Arg(8)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_RoundTrip_ProjectionLoss)
    ->Arg(4)->Arg(16)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace mapinv
