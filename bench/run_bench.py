#!/usr/bin/env python3
"""Reproducible benchmark harness (the BENCH_* trajectory).

Runs the Google-Benchmark binaries under a build directory with their baked-in
fixed seeds and writes one JSON file per invocation:

    { "date": "...", "label": "...", "git": "...",
      "results": [ { "bench": "bench_chase_throughput",
                     "config": "BM_Chase_ForwardTgds/1024",
                     "wall_ms": 1.93, "cpu_ms": 1.92,
                     "stats": { "facts_out": 1056.0, ... } }, ... ] }

Usage:
    bench/run_bench.py                        # all binaries -> BENCH_<date>.json
    bench/run_bench.py --bench bench_chase_throughput bench_cqmaxrec_scaling
    bench/run_bench.py --label baseline --out BENCH_2026-08-05_baseline.json
    bench/run_bench.py --smoke                # tiny configs, correctness only
    bench/run_bench.py --compare BASELINE.json --threshold 1.0
                                              # per-config + geomean speedups
                                              # vs a checked-in baseline;
                                              # exits 1 below the thresholds

Every workload seed lives in the bench sources (mapgen generators are fully
seeded), so two runs of this script on the same machine and build flags are
directly comparable; `--label` tags the run (e.g. "baseline" vs "hom-plan").
`--smoke` runs one small config per binary with a minimal measuring window —
it exists for CI (asan) to keep the bench tree compiling and running, not for
timing.
"""

import argparse
import datetime
import json
import os
import subprocess
import sys

ALL_BENCHES = [
    "bench_chase_throughput",
    "bench_chase_delta",
    "bench_cqmaxrec_scaling",
    "bench_core",
    "bench_rewrite",
    "bench_translation",
    "bench_product",
    "bench_roundtrip_quality",
    "bench_polyso_scaling",
    "bench_exponential_family",
]

# One cheap representative config per binary for --smoke (regex filters).
SMOKE_FILTERS = {
    "bench_chase_throughput": r"BM_Chase_ForwardTgds/64$",
    "bench_chase_delta": r"BM_ChaseDelta_(Absorb|FullRechase)/256$",
    "bench_cqmaxrec_scaling": r"BM_CqMaxRecovery_FrontierWidth/3$",
    "bench_core": r"/8$|/8/",
    "bench_rewrite": r"/2$|/2/",
    "bench_translation": r"/64$|/64/",
    "bench_product": r"/2$|/2/",
    "bench_roundtrip_quality": r"/64$|/64/",
    "bench_polyso_scaling": r"/2$|/2/",
    "bench_exponential_family": r"/2/2$|/2$",
}

# Built-in counters google-benchmark attaches that are not workload stats.
NON_STAT_KEYS = {
    "name", "run_name", "run_type", "repetitions", "repetition_index",
    "threads", "iterations", "real_time", "cpu_time", "time_unit",
    "family_index", "per_family_instance_index", "aggregate_name",
    "aggregate_unit", "error_occurred", "error_message",
}

TIME_UNIT_TO_MS = {"ns": 1e-6, "us": 1e-3, "ms": 1.0, "s": 1e3}


def git_rev(repo_root):
    try:
        return subprocess.check_output(
            ["git", "-C", repo_root, "rev-parse", "--short", "HEAD"],
            text=True).strip()
    except Exception:  # noqa: BLE001 - bench metadata only
        return "unknown"


def run_binary(path, min_time, bench_filter):
    cmd = [path, "--benchmark_format=json",
           f"--benchmark_min_time={min_time}"]
    if bench_filter:
        cmd.append(f"--benchmark_filter={bench_filter}")
    proc = subprocess.run(cmd, capture_output=True, text=True, check=False)
    if proc.returncode != 0:
        raise RuntimeError(
            f"{os.path.basename(path)} exited {proc.returncode}:\n"
            f"{proc.stderr.strip()}")
    return json.loads(proc.stdout)


def collect(report, bench_name):
    results = []
    for b in report.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        unit = TIME_UNIT_TO_MS.get(b.get("time_unit", "ns"), 1e-6)
        stats = {k: v for k, v in b.items() if k not in NON_STAT_KEYS}
        results.append({
            "bench": bench_name,
            "config": b["name"],
            "wall_ms": b["real_time"] * unit,
            "cpu_ms": b["cpu_time"] * unit,
            "iterations": b["iterations"],
            "stats": stats,
        })
    return results


def compare(baseline_path, results, geomean_threshold, config_floor):
    """Prints per-config and geomean speedup tables vs a baseline file.

    Speedup is baseline_wall / current_wall (>1 means the current build is
    faster). Returns a list of failure strings (empty when every threshold
    holds). Configs present on only one side are reported, never silently
    dropped.
    """
    import math

    with open(baseline_path) as f:
        baseline = json.load(f)
    base = {(r["bench"], r["config"]): r["wall_ms"]
            for r in baseline["results"]}
    cur = {(r["bench"], r["config"]): r["wall_ms"] for r in results}

    matched = sorted(set(base) & set(cur))
    only_base = sorted(set(base) - set(cur))
    only_cur = sorted(set(cur) - set(base))

    failures = []
    print(f"\n[compare] vs {os.path.basename(baseline_path)} "
          f"(label='{baseline.get('label', '')}', git={baseline.get('git')})")
    width = max((len(f"{b}:{c}") for b, c in matched), default=20)
    print(f"  {'config'.ljust(width)}  {'base ms':>10}  {'now ms':>10}  "
          f"{'speedup':>8}")
    per_bench = {}
    for key in matched:
        b, c = key
        base_ms, cur_ms = base[key], cur[key]
        # Sub-microsecond configs are all timer noise; report but exclude
        # from the geomean and the floor check.
        noise = base_ms < 1e-3 or cur_ms < 1e-3
        speedup = (base_ms / cur_ms) if cur_ms > 0 else float("inf")
        tag = " (noise)" if noise else ""
        print(f"  {f'{b}:{c}'.ljust(width)}  {base_ms:>10.3f}  "
              f"{cur_ms:>10.3f}  {speedup:>7.2f}x{tag}")
        if noise:
            continue
        per_bench.setdefault(b, []).append(speedup)
        if config_floor is not None and speedup < config_floor:
            failures.append(
                f"{b}:{c} speedup {speedup:.2f}x below floor "
                f"{config_floor:.2f}x")
    for b, c in only_base:
        print(f"  {f'{b}:{c}'.ljust(width)}  baseline only (not run here)")
    for b, c in only_cur:
        print(f"  {f'{b}:{c}'.ljust(width)}  new config (no baseline)")
    if only_base or only_cur:
        print(f"  [compare] {len(matched)} matched, {len(only_base)} baseline-"
              f"only, {len(only_cur)} new — one-sided configs are excluded "
              f"from the geomean")
    if only_base and (geomean_threshold is not None
                      or config_floor is not None):
        # A threshold gate over a shrunken config set proves nothing: a
        # regression can hide behind a config that simply stopped running.
        failures.append(
            f"{len(only_base)} baseline config(s) missing from this run "
            f"(first: {only_base[0][0]}:{only_base[0][1]}); run the full "
            f"bench set or rebase the baseline")

    print(f"\n  {'geomean speedup':<{width + 2}}")
    all_speedups = []
    for b in sorted(per_bench):
        sp = per_bench[b]
        g = math.exp(sum(math.log(s) for s in sp) / len(sp))
        all_speedups.extend(sp)
        print(f"  {b.ljust(width)}  {g:>7.2f}x over {len(sp)} configs")
    if all_speedups:
        overall = math.exp(
            sum(math.log(s) for s in all_speedups) / len(all_speedups))
        print(f"  {'OVERALL'.ljust(width)}  {overall:>7.2f}x over "
              f"{len(all_speedups)} configs")
        if geomean_threshold is not None and overall < geomean_threshold:
            failures.append(
                f"overall geomean {overall:.2f}x below threshold "
                f"{geomean_threshold:.2f}x")
    else:
        failures.append("no comparable configs between baseline and this run")
    return failures


def main():
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default=os.path.join(repo_root, "build"))
    parser.add_argument("--bench", nargs="*", default=ALL_BENCHES,
                        help="benchmark binaries to run (default: all)")
    parser.add_argument("--filter", default=None,
                        help="extra --benchmark_filter regex for every binary")
    parser.add_argument("--min-time", type=float, default=0.05,
                        help="per-benchmark measuring window in seconds")
    parser.add_argument("--label", default="",
                        help="free-form tag recorded in the output")
    parser.add_argument("--out", default=None,
                        help="output path (default BENCH_<date>.json)")
    parser.add_argument("--smoke", action="store_true",
                        help="one small config per binary, minimal window; "
                             "exercises the bench tree without timing it")
    parser.add_argument("--compare", default=None, metavar="BASELINE.json",
                        help="compare this run's wall times against a "
                             "baseline BENCH_*.json: per-config and geomean "
                             "speedup tables")
    parser.add_argument("--threshold", type=float, default=None,
                        help="with --compare: exit 1 if the overall geomean "
                             "speedup falls below this (e.g. 1.0 = must not "
                             "regress)")
    parser.add_argument("--config-floor", type=float, default=None,
                        help="with --compare: exit 1 if any single config's "
                             "speedup falls below this")
    args = parser.parse_args()

    date = datetime.date.today().isoformat()
    out_path = args.out or os.path.join(repo_root, f"BENCH_{date}.json")
    bench_dir = os.path.join(args.build_dir, "bench")

    results = []
    failures = []
    for name in args.bench:
        path = os.path.join(bench_dir, name)
        if not os.path.exists(path):
            failures.append(f"{name}: binary not found at {path}")
            continue
        bench_filter = args.filter
        min_time = args.min_time
        if args.smoke:
            bench_filter = SMOKE_FILTERS.get(name, args.filter)
            min_time = 0.01
        print(f"[run_bench] {name}"
              + (f" (filter={bench_filter})" if bench_filter else ""),
              flush=True)
        try:
            report = run_binary(path, min_time, bench_filter)
        except RuntimeError as err:
            failures.append(str(err))
            continue
        results.append(collect(report, name))

    doc = {
        "date": date,
        "label": args.label or ("smoke" if args.smoke else ""),
        "git": git_rev(repo_root),
        "min_time_s": 0.01 if args.smoke else args.min_time,
        "results": [r for per_bin in results for r in per_bin],
    }
    if args.smoke:
        # Smoke mode is a correctness gate: binaries must run, output is not
        # a timing artifact, so nothing is written unless --out was given.
        if args.out:
            with open(out_path, "w") as f:
                json.dump(doc, f, indent=1)
        print(f"[run_bench] smoke ok: {len(doc['results'])} configs ran")
    else:
        with open(out_path, "w") as f:
            json.dump(doc, f, indent=1)
        print(f"[run_bench] wrote {out_path} ({len(doc['results'])} configs)")

    if args.compare:
        failures.extend(
            compare(args.compare, doc["results"], args.threshold,
                    args.config_floor))

    if failures:
        for f in failures:
            print(f"[run_bench] FAILED: {f}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
