// E5 — tgds → plain SO-tgd translation is linear time (Section 5.1).
//
// Sweeps the tgd count and the per-tgd size; time per tgd should stay flat.

#include <benchmark/benchmark.h>

#include "mapgen/generators.h"
#include "rewrite/skolemize.h"

namespace mapinv {
namespace {

void BM_Translation_NumTgds(benchmark::State& state) {
  RandomMappingConfig config;
  config.seed = 13;
  config.num_tgds = static_cast<int>(state.range(0));
  config.source_relations = config.num_tgds;
  config.target_relations = config.num_tgds;
  config.existential_vars = 2;
  TgdMapping mapping = GenerateRandomMapping(config);
  for (auto _ : state) {
    SOTgdMapping so = TgdsToPlainSOTgd(mapping).ValueOrDie();
    benchmark::DoNotOptimize(so);
  }
  state.counters["tgds"] = static_cast<double>(config.num_tgds);
  state.counters["ns_per_tgd"] = benchmark::Counter(
      static_cast<double>(config.num_tgds),
      benchmark::Counter::kIsIterationInvariantRate |
          benchmark::Counter::kInvert);
}

void BM_Translation_TgdSize(benchmark::State& state) {
  RandomMappingConfig config;
  config.seed = 17;
  config.num_tgds = 8;
  config.premise_atoms = static_cast<int>(state.range(0));
  config.conclusion_atoms = static_cast<int>(state.range(0));
  config.premise_vars = config.premise_atoms + 2;
  TgdMapping mapping = GenerateRandomMapping(config);
  for (auto _ : state) {
    SOTgdMapping so = TgdsToPlainSOTgd(mapping).ValueOrDie();
    benchmark::DoNotOptimize(so);
  }
  state.counters["atoms_per_side"] = static_cast<double>(config.premise_atoms);
}

BENCHMARK(BM_Translation_NumTgds)
    ->Arg(4)->Arg(16)->Arg(64)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Translation_TgdSize)
    ->DenseRange(1, 8)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace mapinv
