file(REMOVE_RECURSE
  "CMakeFiles/rewrite_so_test.dir/rewrite_so_test.cc.o"
  "CMakeFiles/rewrite_so_test.dir/rewrite_so_test.cc.o.d"
  "rewrite_so_test"
  "rewrite_so_test.pdb"
  "rewrite_so_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rewrite_so_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
