# Empty compiler generated dependencies file for rewrite_so_test.
# This may be replaced when dependencies are built.
