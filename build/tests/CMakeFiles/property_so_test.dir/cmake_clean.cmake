file(REMOVE_RECURSE
  "CMakeFiles/property_so_test.dir/property_so_test.cc.o"
  "CMakeFiles/property_so_test.dir/property_so_test.cc.o.d"
  "property_so_test"
  "property_so_test.pdb"
  "property_so_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_so_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
