file(REMOVE_RECURSE
  "CMakeFiles/mapgen_test.dir/mapgen_test.cc.o"
  "CMakeFiles/mapgen_test.dir/mapgen_test.cc.o.d"
  "mapgen_test"
  "mapgen_test.pdb"
  "mapgen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapgen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
