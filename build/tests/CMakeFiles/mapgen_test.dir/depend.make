# Empty dependencies file for mapgen_test.
# This may be replaced when dependencies are built.
