file(REMOVE_RECURSE
  "CMakeFiles/chase_so_test.dir/chase_so_test.cc.o"
  "CMakeFiles/chase_so_test.dir/chase_so_test.cc.o.d"
  "chase_so_test"
  "chase_so_test.pdb"
  "chase_so_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chase_so_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
