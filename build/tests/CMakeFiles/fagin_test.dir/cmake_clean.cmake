file(REMOVE_RECURSE
  "CMakeFiles/fagin_test.dir/fagin_test.cc.o"
  "CMakeFiles/fagin_test.dir/fagin_test.cc.o.d"
  "fagin_test"
  "fagin_test.pdb"
  "fagin_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fagin_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
