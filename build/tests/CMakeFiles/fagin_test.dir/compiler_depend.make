# Empty compiler generated dependencies file for fagin_test.
# This may be replaced when dependencies are built.
