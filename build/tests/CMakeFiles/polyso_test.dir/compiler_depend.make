# Empty compiler generated dependencies file for polyso_test.
# This may be replaced when dependencies are built.
