file(REMOVE_RECURSE
  "CMakeFiles/polyso_test.dir/polyso_test.cc.o"
  "CMakeFiles/polyso_test.dir/polyso_test.cc.o.d"
  "polyso_test"
  "polyso_test.pdb"
  "polyso_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polyso_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
