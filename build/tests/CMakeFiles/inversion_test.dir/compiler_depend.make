# Empty compiler generated dependencies file for inversion_test.
# This may be replaced when dependencies are built.
