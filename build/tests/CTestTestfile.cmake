# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/base_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/logic_test[1]_include.cmake")
include("/root/repo/build/tests/eval_test[1]_include.cmake")
include("/root/repo/build/tests/chase_test[1]_include.cmake")
include("/root/repo/build/tests/rewrite_test[1]_include.cmake")
include("/root/repo/build/tests/inversion_test[1]_include.cmake")
include("/root/repo/build/tests/polyso_test[1]_include.cmake")
include("/root/repo/build/tests/check_test[1]_include.cmake")
include("/root/repo/build/tests/mapgen_test[1]_include.cmake")
include("/root/repo/build/tests/parser_test[1]_include.cmake")
include("/root/repo/build/tests/compose_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/fagin_test[1]_include.cmake")
include("/root/repo/build/tests/nested_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/chase_so_test[1]_include.cmake")
include("/root/repo/build/tests/rewrite_so_test[1]_include.cmake")
include("/root/repo/build/tests/property_so_test[1]_include.cmake")
include("/root/repo/build/tests/misc_test[1]_include.cmake")
include("/root/repo/build/tests/language_test[1]_include.cmake")
