# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;5;add_test;/root/repo/examples/CMakeLists.txt;9;mapinv_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_peer_reformulation "/root/repo/build/examples/peer_reformulation")
set_tests_properties(example_peer_reformulation PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;5;add_test;/root/repo/examples/CMakeLists.txt;10;mapinv_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_schema_evolution "/root/repo/build/examples/schema_evolution")
set_tests_properties(example_schema_evolution PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;5;add_test;/root/repo/examples/CMakeLists.txt;11;mapinv_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_student_ids "/root/repo/build/examples/student_ids")
set_tests_properties(example_student_ids PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;5;add_test;/root/repo/examples/CMakeLists.txt;12;mapinv_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_clio_nested "/root/repo/build/examples/clio_nested")
set_tests_properties(example_clio_nested PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;5;add_test;/root/repo/examples/CMakeLists.txt;13;mapinv_add_example;/root/repo/examples/CMakeLists.txt;0;")
