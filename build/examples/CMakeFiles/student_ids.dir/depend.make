# Empty dependencies file for student_ids.
# This may be replaced when dependencies are built.
