file(REMOVE_RECURSE
  "CMakeFiles/student_ids.dir/student_ids.cpp.o"
  "CMakeFiles/student_ids.dir/student_ids.cpp.o.d"
  "student_ids"
  "student_ids.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/student_ids.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
