# Empty dependencies file for clio_nested.
# This may be replaced when dependencies are built.
