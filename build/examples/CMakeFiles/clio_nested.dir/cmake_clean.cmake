file(REMOVE_RECURSE
  "CMakeFiles/clio_nested.dir/clio_nested.cpp.o"
  "CMakeFiles/clio_nested.dir/clio_nested.cpp.o.d"
  "clio_nested"
  "clio_nested.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clio_nested.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
