# Empty dependencies file for peer_reformulation.
# This may be replaced when dependencies are built.
