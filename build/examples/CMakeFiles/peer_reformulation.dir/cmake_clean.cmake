file(REMOVE_RECURSE
  "CMakeFiles/peer_reformulation.dir/peer_reformulation.cpp.o"
  "CMakeFiles/peer_reformulation.dir/peer_reformulation.cpp.o.d"
  "peer_reformulation"
  "peer_reformulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peer_reformulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
