# Empty dependencies file for mapinv_cli.
# This may be replaced when dependencies are built.
