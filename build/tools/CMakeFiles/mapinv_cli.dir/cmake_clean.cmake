file(REMOVE_RECURSE
  "CMakeFiles/mapinv_cli.dir/mapinv_cli.cc.o"
  "CMakeFiles/mapinv_cli.dir/mapinv_cli.cc.o.d"
  "mapinv_cli"
  "mapinv_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapinv_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
