file(REMOVE_RECURSE
  "CMakeFiles/bench_cqmaxrec_scaling.dir/bench_cqmaxrec_scaling.cc.o"
  "CMakeFiles/bench_cqmaxrec_scaling.dir/bench_cqmaxrec_scaling.cc.o.d"
  "bench_cqmaxrec_scaling"
  "bench_cqmaxrec_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cqmaxrec_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
