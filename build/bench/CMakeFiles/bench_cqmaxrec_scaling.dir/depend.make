# Empty dependencies file for bench_cqmaxrec_scaling.
# This may be replaced when dependencies are built.
