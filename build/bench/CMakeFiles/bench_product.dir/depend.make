# Empty dependencies file for bench_product.
# This may be replaced when dependencies are built.
