file(REMOVE_RECURSE
  "CMakeFiles/bench_product.dir/bench_product.cc.o"
  "CMakeFiles/bench_product.dir/bench_product.cc.o.d"
  "bench_product"
  "bench_product.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_product.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
