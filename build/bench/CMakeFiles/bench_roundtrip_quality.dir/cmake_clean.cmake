file(REMOVE_RECURSE
  "CMakeFiles/bench_roundtrip_quality.dir/bench_roundtrip_quality.cc.o"
  "CMakeFiles/bench_roundtrip_quality.dir/bench_roundtrip_quality.cc.o.d"
  "bench_roundtrip_quality"
  "bench_roundtrip_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_roundtrip_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
