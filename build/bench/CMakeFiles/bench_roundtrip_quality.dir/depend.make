# Empty dependencies file for bench_roundtrip_quality.
# This may be replaced when dependencies are built.
