file(REMOVE_RECURSE
  "CMakeFiles/bench_chase_throughput.dir/bench_chase_throughput.cc.o"
  "CMakeFiles/bench_chase_throughput.dir/bench_chase_throughput.cc.o.d"
  "bench_chase_throughput"
  "bench_chase_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_chase_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
