# Empty dependencies file for bench_chase_throughput.
# This may be replaced when dependencies are built.
