file(REMOVE_RECURSE
  "CMakeFiles/bench_polyso_scaling.dir/bench_polyso_scaling.cc.o"
  "CMakeFiles/bench_polyso_scaling.dir/bench_polyso_scaling.cc.o.d"
  "bench_polyso_scaling"
  "bench_polyso_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_polyso_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
