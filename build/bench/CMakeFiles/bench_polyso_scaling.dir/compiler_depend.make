# Empty compiler generated dependencies file for bench_polyso_scaling.
# This may be replaced when dependencies are built.
