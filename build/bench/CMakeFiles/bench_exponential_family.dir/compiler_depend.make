# Empty compiler generated dependencies file for bench_exponential_family.
# This may be replaced when dependencies are built.
