file(REMOVE_RECURSE
  "CMakeFiles/bench_exponential_family.dir/bench_exponential_family.cc.o"
  "CMakeFiles/bench_exponential_family.dir/bench_exponential_family.cc.o.d"
  "bench_exponential_family"
  "bench_exponential_family.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exponential_family.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
