file(REMOVE_RECURSE
  "libmapinv.a"
)
