
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/base/status.cc" "src/CMakeFiles/mapinv.dir/base/status.cc.o" "gcc" "src/CMakeFiles/mapinv.dir/base/status.cc.o.d"
  "/root/repo/src/base/symbols.cc" "src/CMakeFiles/mapinv.dir/base/symbols.cc.o" "gcc" "src/CMakeFiles/mapinv.dir/base/symbols.cc.o.d"
  "/root/repo/src/chase/chase_reverse.cc" "src/CMakeFiles/mapinv.dir/chase/chase_reverse.cc.o" "gcc" "src/CMakeFiles/mapinv.dir/chase/chase_reverse.cc.o.d"
  "/root/repo/src/chase/chase_so.cc" "src/CMakeFiles/mapinv.dir/chase/chase_so.cc.o" "gcc" "src/CMakeFiles/mapinv.dir/chase/chase_so.cc.o.d"
  "/root/repo/src/chase/chase_tgd.cc" "src/CMakeFiles/mapinv.dir/chase/chase_tgd.cc.o" "gcc" "src/CMakeFiles/mapinv.dir/chase/chase_tgd.cc.o.d"
  "/root/repo/src/chase/round_trip.cc" "src/CMakeFiles/mapinv.dir/chase/round_trip.cc.o" "gcc" "src/CMakeFiles/mapinv.dir/chase/round_trip.cc.o.d"
  "/root/repo/src/check/properties.cc" "src/CMakeFiles/mapinv.dir/check/properties.cc.o" "gcc" "src/CMakeFiles/mapinv.dir/check/properties.cc.o.d"
  "/root/repo/src/check/solutions.cc" "src/CMakeFiles/mapinv.dir/check/solutions.cc.o" "gcc" "src/CMakeFiles/mapinv.dir/check/solutions.cc.o.d"
  "/root/repo/src/data/instance.cc" "src/CMakeFiles/mapinv.dir/data/instance.cc.o" "gcc" "src/CMakeFiles/mapinv.dir/data/instance.cc.o.d"
  "/root/repo/src/data/schema.cc" "src/CMakeFiles/mapinv.dir/data/schema.cc.o" "gcc" "src/CMakeFiles/mapinv.dir/data/schema.cc.o.d"
  "/root/repo/src/data/value.cc" "src/CMakeFiles/mapinv.dir/data/value.cc.o" "gcc" "src/CMakeFiles/mapinv.dir/data/value.cc.o.d"
  "/root/repo/src/eval/containment.cc" "src/CMakeFiles/mapinv.dir/eval/containment.cc.o" "gcc" "src/CMakeFiles/mapinv.dir/eval/containment.cc.o.d"
  "/root/repo/src/eval/hom.cc" "src/CMakeFiles/mapinv.dir/eval/hom.cc.o" "gcc" "src/CMakeFiles/mapinv.dir/eval/hom.cc.o.d"
  "/root/repo/src/eval/instance_core.cc" "src/CMakeFiles/mapinv.dir/eval/instance_core.cc.o" "gcc" "src/CMakeFiles/mapinv.dir/eval/instance_core.cc.o.d"
  "/root/repo/src/eval/query_eval.cc" "src/CMakeFiles/mapinv.dir/eval/query_eval.cc.o" "gcc" "src/CMakeFiles/mapinv.dir/eval/query_eval.cc.o.d"
  "/root/repo/src/inversion/compose.cc" "src/CMakeFiles/mapinv.dir/inversion/compose.cc.o" "gcc" "src/CMakeFiles/mapinv.dir/inversion/compose.cc.o.d"
  "/root/repo/src/inversion/cq_maximum_recovery.cc" "src/CMakeFiles/mapinv.dir/inversion/cq_maximum_recovery.cc.o" "gcc" "src/CMakeFiles/mapinv.dir/inversion/cq_maximum_recovery.cc.o.d"
  "/root/repo/src/inversion/eliminate_disjunctions.cc" "src/CMakeFiles/mapinv.dir/inversion/eliminate_disjunctions.cc.o" "gcc" "src/CMakeFiles/mapinv.dir/inversion/eliminate_disjunctions.cc.o.d"
  "/root/repo/src/inversion/eliminate_equalities.cc" "src/CMakeFiles/mapinv.dir/inversion/eliminate_equalities.cc.o" "gcc" "src/CMakeFiles/mapinv.dir/inversion/eliminate_equalities.cc.o.d"
  "/root/repo/src/inversion/maximum_recovery.cc" "src/CMakeFiles/mapinv.dir/inversion/maximum_recovery.cc.o" "gcc" "src/CMakeFiles/mapinv.dir/inversion/maximum_recovery.cc.o.d"
  "/root/repo/src/inversion/partitions.cc" "src/CMakeFiles/mapinv.dir/inversion/partitions.cc.o" "gcc" "src/CMakeFiles/mapinv.dir/inversion/partitions.cc.o.d"
  "/root/repo/src/inversion/polyso.cc" "src/CMakeFiles/mapinv.dir/inversion/polyso.cc.o" "gcc" "src/CMakeFiles/mapinv.dir/inversion/polyso.cc.o.d"
  "/root/repo/src/inversion/query_product.cc" "src/CMakeFiles/mapinv.dir/inversion/query_product.cc.o" "gcc" "src/CMakeFiles/mapinv.dir/inversion/query_product.cc.o.d"
  "/root/repo/src/logic/atom.cc" "src/CMakeFiles/mapinv.dir/logic/atom.cc.o" "gcc" "src/CMakeFiles/mapinv.dir/logic/atom.cc.o.d"
  "/root/repo/src/logic/cq.cc" "src/CMakeFiles/mapinv.dir/logic/cq.cc.o" "gcc" "src/CMakeFiles/mapinv.dir/logic/cq.cc.o.d"
  "/root/repo/src/logic/dependency.cc" "src/CMakeFiles/mapinv.dir/logic/dependency.cc.o" "gcc" "src/CMakeFiles/mapinv.dir/logic/dependency.cc.o.d"
  "/root/repo/src/logic/nested.cc" "src/CMakeFiles/mapinv.dir/logic/nested.cc.o" "gcc" "src/CMakeFiles/mapinv.dir/logic/nested.cc.o.d"
  "/root/repo/src/logic/so_tgd.cc" "src/CMakeFiles/mapinv.dir/logic/so_tgd.cc.o" "gcc" "src/CMakeFiles/mapinv.dir/logic/so_tgd.cc.o.d"
  "/root/repo/src/logic/substitution.cc" "src/CMakeFiles/mapinv.dir/logic/substitution.cc.o" "gcc" "src/CMakeFiles/mapinv.dir/logic/substitution.cc.o.d"
  "/root/repo/src/logic/term.cc" "src/CMakeFiles/mapinv.dir/logic/term.cc.o" "gcc" "src/CMakeFiles/mapinv.dir/logic/term.cc.o.d"
  "/root/repo/src/mapgen/generators.cc" "src/CMakeFiles/mapinv.dir/mapgen/generators.cc.o" "gcc" "src/CMakeFiles/mapinv.dir/mapgen/generators.cc.o.d"
  "/root/repo/src/parser/lexer.cc" "src/CMakeFiles/mapinv.dir/parser/lexer.cc.o" "gcc" "src/CMakeFiles/mapinv.dir/parser/lexer.cc.o.d"
  "/root/repo/src/parser/parser.cc" "src/CMakeFiles/mapinv.dir/parser/parser.cc.o" "gcc" "src/CMakeFiles/mapinv.dir/parser/parser.cc.o.d"
  "/root/repo/src/rewrite/rewrite.cc" "src/CMakeFiles/mapinv.dir/rewrite/rewrite.cc.o" "gcc" "src/CMakeFiles/mapinv.dir/rewrite/rewrite.cc.o.d"
  "/root/repo/src/rewrite/skolemize.cc" "src/CMakeFiles/mapinv.dir/rewrite/skolemize.cc.o" "gcc" "src/CMakeFiles/mapinv.dir/rewrite/skolemize.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
