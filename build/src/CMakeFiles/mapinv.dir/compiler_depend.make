# Empty compiler generated dependencies file for mapinv.
# This may be replaced when dependencies are built.
