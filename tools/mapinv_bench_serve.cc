// mapinv_bench_serve — load driver and one-shot client for mapinv_serve.
//
// Bench mode (default): opens N client connections, gives each its own
// session (mapping + registered instance), and fires a mixed
// exchange/rewrite/invert/metrics workload until the request budget is
// spent. Reports throughput and latency percentiles as one JSON document
// (stdout, or --out=FILE) and exits nonzero if any request failed.
//
//   mapinv_bench_serve --unix=/tmp/mapinv.sock --connections=8 \
//       --requests=4000 --out=BENCH.json [--shutdown]
//
// One-shot mode (--one): reads a single request JSON document from stdin,
// sends it as one frame, and prints the raw response payload followed by a
// newline — exactly the bytes the server framed. This is the transport
// half of the CLI/server parity test:
//
//   mapinv_cli --dump-request invert m.tgd | mapinv_bench_serve --one --unix=...
//
// Flags:
//   --unix=PATH | --tcp=PORT [--host=ADDR]   where the server listens
//   --connections=N   client connections / worker threads (default 8)
//   --requests=N      total requests across the mix (default 4000)
//   --mapping=SPEC    per-session mapping (default gen:chain:3)
//   --out=FILE        write the bench JSON there instead of stdout
//   --shutdown        send server.stop after the run
//   --one             one-shot client mode (see above)

#include <sys/socket.h>
#include <sys/un.h>
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "base/json.h"
#include "base/parse.h"
#include "base/status.h"
#include "serve/protocol.h"

namespace mapinv {
namespace {

struct BenchConfig {
  std::string unix_path;
  int tcp_port = -1;
  std::string host = "127.0.0.1";
  int connections = 8;
  uint64_t requests = 4000;
  std::string mapping = "gen:chain:3";
  std::string out;
  bool shutdown = false;
  bool one_shot = false;
};

int Usage() {
  std::fprintf(stderr,
               "usage: mapinv_bench_serve (--unix=PATH | --tcp=PORT) "
               "[--host=ADDR]\n"
               "       [--connections=N] [--requests=N] [--mapping=SPEC]\n"
               "       [--out=FILE] [--shutdown] [--one]\n");
  return 1;
}

bool ParseFlags(int argc, char** argv, BenchConfig* config) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string name = arg;
    std::string value;
    bool have_value = false;
    if (size_t eq = arg.find('='); eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
      have_value = true;
    }
    if (name == "--shutdown") {
      config->shutdown = true;
      continue;
    }
    if (name == "--one") {
      config->one_shot = true;
      continue;
    }
    const bool known = name == "--unix" || name == "--tcp" ||
                       name == "--host" || name == "--connections" ||
                       name == "--requests" || name == "--mapping" ||
                       name == "--out";
    if (!known) {
      std::fprintf(stderr, "mapinv_bench_serve: unknown flag '%s'\n",
                   name.c_str());
      return false;
    }
    if (!have_value) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "mapinv_bench_serve: flag '%s' expects a value\n",
                     name.c_str());
        return false;
      }
      value = argv[++i];
    }
    if (name == "--unix") {
      config->unix_path = value;
    } else if (name == "--host") {
      config->host = value;
    } else if (name == "--mapping") {
      config->mapping = value;
    } else if (name == "--out") {
      config->out = value;
    } else {
      uint64_t n = 0;
      const uint64_t max = (name == "--tcp") ? 65535 : (1u << 24);
      if (!ParseUint(value, max, &n) || (name != "--tcp" && n == 0)) {
        std::fprintf(stderr, "mapinv_bench_serve: bad value '%s' for %s\n",
                     value.c_str(), name.c_str());
        return false;
      }
      if (name == "--tcp") {
        config->tcp_port = static_cast<int>(n);
      } else if (name == "--connections") {
        config->connections = static_cast<int>(n);
      } else if (name == "--requests") {
        config->requests = n;
      }
    }
  }
  return true;
}

int Connect(const BenchConfig& config) {
  if (!config.unix_path.empty()) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (config.unix_path.size() >= sizeof(addr.sun_path)) {
      ::close(fd);
      return -1;
    }
    std::strncpy(addr.sun_path, config.unix_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd);
      return -1;
    }
    return fd;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(config.tcp_port));
  if (::inet_pton(AF_INET, config.host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

// Sends one request document and reads the response payload.
// Returns false on any transport failure.
bool RoundTrip(int fd, const std::string& request, std::string* response) {
  if (!WriteFrame(fd, request).ok()) return false;
  Result<bool> frame = ReadFrame(fd, kDefaultMaxFrameBytes, response);
  return frame.ok() && *frame;
}

// True if the response document says status "ok".
bool ResponseOk(const std::string& payload) {
  Result<Json> json = Json::Parse(payload);
  return json.ok() && json->GetString("status") == "ok";
}

struct WorkerResult {
  std::vector<double> latencies_ms;
  uint64_t ok = 0;
  uint64_t failed = 0;
  uint64_t by_kind[4] = {0, 0, 0, 0};  // exchange, rewrite, invert, metrics
};

// The per-connection workload: one session, one registered instance, then a
// deterministic request mix until the shared budget runs out.
void Worker(const BenchConfig& config, int index,
            std::atomic<uint64_t>* remaining, WorkerResult* result) {
  const int fd = Connect(config);
  if (fd < 0) {
    result->failed += 1;
    return;
  }
  const std::string session = "bench-" + std::to_string(index);
  std::string response;

  auto request = [&](std::string command) {
    Json json = Json::MakeObject();
    json.Set("id", Json(static_cast<int64_t>(index)));
    json.Set("command", Json(std::move(command)));
    json.Set("session", Json(session));
    return json;
  };

  Json open = request("session.open");
  open.Set("mapping", Json(config.mapping));
  Json put = request("instance.put");
  put.Set("name", Json("db"));
  put.Set("instance", Json("{ R0(1,2), R1(2,3), R2(3,4) }"));
  for (const Json* setup : {&open, &put}) {
    if (!RoundTrip(fd, setup->Serialize(), &response) ||
        !ResponseOk(response)) {
      result->failed += 1;
      ::close(fd);
      return;
    }
  }

  Json exchange = request("exchange");
  exchange.Set("instance_ref", Json("db"));
  Json rewrite = request("rewrite");
  rewrite.Set("query", Json("Q(x,y) :- T(x,y)"));
  Json invert = request("invert");
  Json metrics = Json::MakeObject();
  metrics.Set("id", Json(static_cast<int64_t>(index)));
  metrics.Set("command", Json("metrics"));
  const std::string wire[4] = {exchange.Serialize(), rewrite.Serialize(),
                               invert.Serialize(), metrics.Serialize()};

  uint64_t seq = 0;
  while (true) {
    uint64_t left = remaining->load(std::memory_order_relaxed);
    if (left == 0 ||
        !remaining->compare_exchange_weak(left, left - 1,
                                          std::memory_order_relaxed)) {
      if (left == 0) break;
      continue;
    }
    // 4:2:1:1 exchange : rewrite : invert : metrics.
    const uint64_t slot = seq++ % 8;
    const int kind = slot < 4 ? 0 : slot < 6 ? 1 : slot < 7 ? 2 : 3;
    const auto start = std::chrono::steady_clock::now();
    const bool transported = RoundTrip(fd, wire[kind], &response);
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    if (transported && ResponseOk(response)) {
      result->ok += 1;
      result->latencies_ms.push_back(ms);
      result->by_kind[kind] += 1;
    } else {
      result->failed += 1;
      if (!transported) break;  // connection is gone
    }
  }
  Json close = request("session.close");
  (void)RoundTrip(fd, close.Serialize(), &response);
  ::close(fd);
}

double Percentile(std::vector<double>* sorted, double p) {
  if (sorted->empty()) return 0.0;
  const size_t index = std::min(
      sorted->size() - 1,
      static_cast<size_t>(p / 100.0 * static_cast<double>(sorted->size())));
  return (*sorted)[index];
}

int RunOneShot(const BenchConfig& config) {
  std::ostringstream buffer;
  buffer << std::cin.rdbuf();
  const int fd = Connect(config);
  if (fd < 0) {
    std::fprintf(stderr, "mapinv_bench_serve: cannot connect\n");
    return 3;
  }
  std::string response;
  if (!RoundTrip(fd, buffer.str(), &response)) {
    std::fprintf(stderr, "mapinv_bench_serve: transport failure\n");
    ::close(fd);
    return 3;
  }
  ::close(fd);
  std::fwrite(response.data(), 1, response.size(), stdout);
  std::fputc('\n', stdout);
  return 0;
}

int Run(int argc, char** argv) {
  BenchConfig config;
  if (!ParseFlags(argc, argv, &config)) return Usage();
  if (config.unix_path.empty() && config.tcp_port < 0) return Usage();
  if (config.one_shot) return RunOneShot(config);

  std::atomic<uint64_t> remaining{config.requests};
  std::vector<WorkerResult> results(config.connections);
  std::vector<std::thread> workers;
  workers.reserve(config.connections);
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < config.connections; ++i) {
    workers.emplace_back(Worker, std::cref(config), i, &remaining,
                         &results[i]);
  }
  for (std::thread& worker : workers) worker.join();
  const double wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - start)
                             .count();

  if (config.shutdown) {
    const int fd = Connect(config);
    if (fd >= 0) {
      Json stop = Json::MakeObject();
      stop.Set("id", Json(static_cast<int64_t>(0)));
      stop.Set("command", Json("server.stop"));
      std::string response;
      (void)RoundTrip(fd, stop.Serialize(), &response);
      ::close(fd);
    }
  }

  std::vector<double> latencies;
  uint64_t ok = 0;
  uint64_t failed = 0;
  uint64_t by_kind[4] = {0, 0, 0, 0};
  for (const WorkerResult& r : results) {
    latencies.insert(latencies.end(), r.latencies_ms.begin(),
                     r.latencies_ms.end());
    ok += r.ok;
    failed += r.failed;
    for (int k = 0; k < 4; ++k) by_kind[k] += r.by_kind[k];
  }
  std::sort(latencies.begin(), latencies.end());

  Json mix = Json::MakeObject();
  mix.Set("exchange", Json(by_kind[0]));
  mix.Set("rewrite", Json(by_kind[1]));
  mix.Set("invert", Json(by_kind[2]));
  mix.Set("metrics", Json(by_kind[3]));
  Json latency = Json::MakeObject();
  latency.Set("p50", Json(Percentile(&latencies, 50)));
  latency.Set("p90", Json(Percentile(&latencies, 90)));
  latency.Set("p99", Json(Percentile(&latencies, 99)));
  latency.Set("max", Json(latencies.empty() ? 0.0 : latencies.back()));
  Json report = Json::MakeObject();
  report.Set("bench", Json("mapinv_serve"));
  report.Set("mapping", Json(config.mapping));
  report.Set("connections", Json(static_cast<int64_t>(config.connections)));
  report.Set("requests", Json(config.requests));
  report.Set("ok", Json(ok));
  report.Set("failed", Json(failed));
  report.Set("wall_ms", Json(wall_ms));
  report.Set("throughput_rps",
             Json(wall_ms > 0 ? static_cast<double>(ok) / (wall_ms / 1000.0)
                              : 0.0));
  report.Set("latency_ms", std::move(latency));
  report.Set("mix", std::move(mix));
  const std::string rendered = report.Serialize();

  if (!config.out.empty()) {
    std::ofstream out(config.out);
    if (!out) {
      std::fprintf(stderr, "mapinv_bench_serve: cannot write '%s'\n",
                   config.out.c_str());
      return 3;
    }
    out << rendered << "\n";
  } else {
    std::printf("%s\n", rendered.c_str());
  }
  if (!config.out.empty()) std::printf("%s\n", rendered.c_str());
  return failed == 0 ? 0 : 2;
}

}  // namespace
}  // namespace mapinv

int main(int argc, char** argv) { return mapinv::Run(argc, argv); }
