// mapinv_cli — command-line front end for the mapinv library.
//
// Usage:
//   mapinv_cli [flags] invert   <mapping>                     CQ-maximum recovery
//   mapinv_cli [flags] maxrec   <mapping>                     raw maximum recovery
//   mapinv_cli [flags] polyso   <mapping>                     PolySOInverse (via SO)
//   mapinv_cli [flags] rewrite  <mapping> '<query>'           source rewriting
//   mapinv_cli [flags] exchange <mapping> <instance-file>     forward chase
//   mapinv_cli [flags] roundtrip <mapping> <instance-file>    chase there and back
//
// Commands may also be spelled as flags (`--invert` ≡ `invert`). <mapping> is
// a tgd file in the parser syntax, or a synthetic generator spec:
//   gen:exp:N,K    exponential-recovery family (N producers, K conjuncts)
//   gen:chain:M    chain join of M binary relations
//   gen:copy:N,A   N copy tgds of arity A
//   gen:proj:N     N projection tgds
// Mapping-taking commands with no <mapping> argument default to gen:exp:3,9
// (the exponential family the benchmarks use).
//
// Flags (anywhere on the command line, --name=value or --name value):
//   --max-facts=N      chase fact budget        --max-worlds=N   world budget
//   --max-disjuncts=N  rewriting budget         --threads=N      parallelism
//   --deadline-ms=N    wall-clock budget        --stats          counters to stderr
//   --on-exhausted=fail|partial   what a blown budget does: error out (default)
//                      or return the best sound partial result, flagged
//                      "partial":true in --stats-json
//   --cancel-after-ms=N           cancel the command from a timer thread
//                      (exercises cooperative cancellation end to end)
//   --trace            per-phase span tree to stderr (human-readable)
//   --trace-json       span tree as one JSON line to stderr
//   --stats-json       {"command","wall_ms","stats"} as one JSON line to stderr
//
// Instance files contain one `{ ... }` instance. Exit status is 0 on
// success, 1 on usage errors, 2 on processing errors (including
// kResourceExhausted from --deadline-ms and the limit flags).

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "engine/execution_options.h"
#include "engine/trace.h"

#include "chase/chase_tgd.h"
#include "chase/round_trip.h"
#include "check/properties.h"
#include "eval/instance_core.h"
#include "inversion/compose.h"
#include "inversion/cq_maximum_recovery.h"
#include "inversion/maximum_recovery.h"
#include "inversion/polyso.h"
#include "mapgen/generators.h"
#include "parser/parser.h"
#include "rewrite/rewrite.h"

namespace mapinv {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: mapinv_cli <command> <mapping> [arg]\n"
               "commands (also accepted as --command):\n"
               "  invert    <mapping>             CQ-maximum recovery "
               "(Section 4)\n"
               "  maxrec    <mapping>             maximum recovery "
               "(disjunctions/equalities)\n"
               "  polyso    <mapping>             polynomial-time SO inverse "
               "(Section 5)\n"
               "  rewrite   <mapping> '<query>'   certain-answer source "
               "rewriting\n"
               "  exchange  <mapping> <instance>  chase forward\n"
               "  roundtrip <mapping> <instance>  chase forward then back "
               "through the inverse\n"
               "  so-invert <so-mapping>          PolySOInverse of a plain "
               "SO-tgd file\n"
               "  compose   <mapping1> <mapping2> SO-tgd composition by "
               "unfolding\n"
               "  check     <mapping> <reverse> <instance>\n"
               "                                  verify the reverse mapping "
               "is a sound recovery\n"
               "  core      <instance>            core of an instance with "
               "nulls\n"
               "<mapping> may be a file or a generator spec: gen:exp:N,K "
               "gen:chain:M gen:copy:N,A gen:proj:N\n"
               "flags: --max-facts=N --max-worlds=N --max-disjuncts=N "
               "--threads=N --deadline-ms=N\n"
               "       --on-exhausted=fail|partial --cancel-after-ms=N\n"
               "       --stats --stats-json --trace --trace-json\n");
  return 1;
}

// Prints a flag diagnostic; always returns false so callers can
// `return FlagError(...)` from ParseFlags.
bool FlagError(const std::string& message) {
  std::fprintf(stderr, "mapinv_cli: %s\n", message.c_str());
  return false;
}

// Strict non-negative integer parse: digits only (no sign, no whitespace,
// no trailing garbage), rejecting values above `max`. strtoull alone is not
// enough — it silently wraps negatives and saturates on ERANGE.
bool ParseUint(const std::string& text, uint64_t max, uint64_t* out) {
  if (text.empty()) return false;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (errno == ERANGE || *end != '\0' || v > max) return false;
  *out = v;
  return true;
}

// The command vocabulary, shared between positional and --flag spellings.
bool IsCommand(const std::string& name) {
  static const char* kCommands[] = {"invert",    "maxrec",  "polyso",
                                    "rewrite",   "exchange", "roundtrip",
                                    "so-invert", "compose", "check", "core"};
  for (const char* c : kCommands) {
    if (name == c) return true;
  }
  return false;
}

struct OutputFlags {
  bool stats = false;
  bool stats_json = false;
  bool trace = false;
  bool trace_json = false;
  /// Delay before the CLI cancels its own call; < 0 = never.
  int64_t cancel_after_ms = -1;
};

// Parses `--name=value` / `--name value` flags out of argv, leaving the
// positional arguments in `positional`. A flag spelling a command name
// (`--invert`) is rewritten to the positional command. Returns false on a
// bad flag, after printing a diagnostic naming it.
bool ParseFlags(int argc, char** argv, ExecutionOptions* options,
                OutputFlags* output, std::vector<char*>* positional) {
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional->push_back(argv[i]);
      continue;
    }
    std::string name = arg;
    std::string value;
    bool have_value = false;
    if (size_t eq = arg.find('='); eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
      have_value = true;
    }
    if (!have_value && IsCommand(name.substr(2))) {
      positional->push_back(argv[i] + 2);
      continue;
    }
    if (name == "--stats") {
      output->stats = true;
      continue;
    }
    if (name == "--stats-json") {
      output->stats_json = true;
      continue;
    }
    if (name == "--trace") {
      output->trace = true;
      continue;
    }
    if (name == "--trace-json") {
      output->trace_json = true;
      continue;
    }
    const bool known =
        name == "--max-facts" || name == "--max-worlds" ||
        name == "--max-disjuncts" || name == "--threads" ||
        name == "--deadline-ms" || name == "--cancel-after-ms" ||
        name == "--on-exhausted";
    if (!known) {
      return FlagError("unknown flag '" + name + "'");
    }
    if (!have_value) {
      if (i + 1 >= argc) {
        return FlagError("flag '" + name + "' expects a value");
      }
      value = argv[++i];
    }
    if (name == "--on-exhausted") {
      if (value == "fail") {
        options->on_exhausted = OnExhausted::kFail;
      } else if (value == "partial") {
        options->on_exhausted = OnExhausted::kPartial;
      } else {
        return FlagError("bad value '" + value +
                         "' for --on-exhausted (want 'fail' or 'partial')");
      }
      continue;
    }
    // The remaining flags are non-negative integers; each has a range that
    // its destination type can actually represent.
    const uint64_t max = (name == "--threads")
                             ? 1u << 16
                             : static_cast<uint64_t>(INT64_MAX);
    uint64_t n = 0;
    if (!ParseUint(value, max, &n)) {
      return FlagError("bad value '" + value + "' for " + name +
                       " (want an integer in [0, " + std::to_string(max) +
                       "])");
    }
    if (name == "--max-facts") {
      options->max_new_facts = static_cast<size_t>(n);
    } else if (name == "--max-worlds") {
      options->max_worlds = static_cast<size_t>(n);
    } else if (name == "--max-disjuncts") {
      options->max_disjuncts = static_cast<size_t>(n);
    } else if (name == "--threads") {
      options->threads = static_cast<int>(n);
    } else if (name == "--deadline-ms") {
      options->deadline_ms = static_cast<int64_t>(n);
    } else if (name == "--cancel-after-ms") {
      output->cancel_after_ms = static_cast<int64_t>(n);
    }
  }
  return true;
}

// Arms a background thread that cancels `token` after a delay, unless the
// command finishes first (the destructor wakes and joins it).
class CancelTimer {
 public:
  void Arm(CancelToken* token, int64_t delay_ms) {
    thread_ = std::thread([this, token, delay_ms] {
      std::unique_lock<std::mutex> lock(mu_);
      if (!cv_.wait_for(lock, std::chrono::milliseconds(delay_ms),
                        [this] { return done_; })) {
        token->Cancel();
      }
    });
  }
  ~CancelTimer() {
    if (!thread_.joinable()) return;
    {
      std::lock_guard<std::mutex> lock(mu_);
      done_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool done_ = false;
  std::thread thread_;
};

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// Parses "N" or "N,K" following a gen: family prefix. Parameters are sizes
// of generated mappings, so anything outside [1, 10^6] is a spec error, not
// a request (and the bound keeps an overflowed literal from truncating into
// a small int).
bool ParseGenParams(const std::string& text, int* a, int* b) {
  constexpr uint64_t kMaxParam = 1000000;
  const size_t comma = text.find(',');
  uint64_t v = 0;
  if (!ParseUint(text.substr(0, comma), kMaxParam, &v) || v == 0) return false;
  *a = static_cast<int>(v);
  if (comma == std::string::npos) return true;
  if (b == nullptr) return false;
  if (!ParseUint(text.substr(comma + 1), kMaxParam, &v) || v == 0) return false;
  *b = static_cast<int>(v);
  return true;
}

// A mapping argument is either a file path or a gen:<family>:<params> spec.
Result<TgdMapping> LoadMapping(const std::string& spec) {
  if (spec.rfind("gen:", 0) != 0) {
    MAPINV_ASSIGN_OR_RETURN(std::string text, ReadFile(spec));
    return ParseTgdMapping(text);
  }
  const std::string rest = spec.substr(4);
  const size_t colon = rest.find(':');
  const std::string family = rest.substr(0, colon);
  const std::string params =
      colon == std::string::npos ? "" : rest.substr(colon + 1);
  int a = 0;
  int b = 0;
  if (family == "exp") {
    a = 3;
    b = 9;  // default: big enough that Section 4 inversion needs a budget
    if (!params.empty() && !ParseGenParams(params, &a, &b)) {
      return Status::InvalidArgument("bad generator spec '" + spec +
                                     "' (want gen:exp:N,K)");
    }
    return ExponentialFamilyMapping(a, b);
  }
  if (family == "chain") {
    a = 3;
    if (!params.empty() && !ParseGenParams(params, &a, nullptr)) {
      return Status::InvalidArgument("bad generator spec '" + spec +
                                     "' (want gen:chain:M)");
    }
    return ChainJoinMapping(a);
  }
  if (family == "copy") {
    a = 2;
    b = 2;
    if (!params.empty() && !ParseGenParams(params, &a, &b)) {
      return Status::InvalidArgument("bad generator spec '" + spec +
                                     "' (want gen:copy:N,A)");
    }
    return CopyMapping(a, b);
  }
  if (family == "proj") {
    a = 2;
    if (!params.empty() && !ParseGenParams(params, &a, nullptr)) {
      return Status::InvalidArgument("bad generator spec '" + spec +
                                     "' (want gen:proj:N)");
    }
    return ProjectionMapping(a);
  }
  return Status::InvalidArgument("unknown generator family in '" + spec +
                                 "' (know gen:exp, gen:chain, gen:copy, "
                                 "gen:proj)");
}

int Fail(const Status& status) {
  std::fprintf(stderr, "mapinv_cli: %s\n", status.ToString().c_str());
  return 2;
}

std::string StatsJson(const ExecStats& stats) {
  const ExecStatsSnapshot s = stats.Snapshot();
  std::string out = "{";
  out += "\"chase_steps\":" + std::to_string(s.chase_steps);
  out += ",\"hom_searches\":" + std::to_string(s.hom_searches);
  out += ",\"hom_backtracks\":" + std::to_string(s.hom_backtracks);
  out += ",\"hom_plans_compiled\":" + std::to_string(s.hom_plans_compiled);
  out +=
      ",\"hom_bucket_candidates\":" + std::to_string(s.hom_bucket_candidates);
  out += ",\"hom_slot_bindings\":" + std::to_string(s.hom_slot_bindings);
  out += ",\"cache_hits\":" + std::to_string(s.cache_hits);
  out += ",\"cache_misses\":" + std::to_string(s.cache_misses);
  out += ",\"tuples_arena_bytes\":" + std::to_string(s.tuples_arena_bytes);
  out += ",\"index_catchup_rows\":" + std::to_string(s.index_catchup_rows);
  out += ",\"worlds_forked\":" + std::to_string(s.worlds_forked);
  out += ",\"partial\":";
  out += s.partial ? "true" : "false";
  out += "}";
  return out;
}

int Run(int argc, char** argv) {
  ExecutionOptions options;
  ExecStats stats;
  OutputFlags output;
  std::vector<char*> args;
  if (!ParseFlags(argc, argv, &options, &output, &args)) return Usage();
  options.stats = &stats;
  Tracer tracer;
  if (output.trace || output.trace_json) options.trace = &tracer;
  CancelToken cancel;
  CancelTimer cancel_timer;
  if (output.cancel_after_ms >= 0) {
    options.cancel = &cancel;
    cancel_timer.Arm(&cancel, output.cancel_after_ms);
  }
  const int narg = static_cast<int>(args.size());
  argv = args.data();
  if (narg < 2) return Usage();
  const std::string command = argv[1];
  if (!IsCommand(command)) {
    std::fprintf(stderr, "mapinv_cli: unknown command '%s'\n", command.c_str());
    return Usage();
  }
  // Mapping-taking commands run against the exponential family by default;
  // commands needing real files still require their arguments.
  const bool needs_file = command == "core" || command == "so-invert" ||
                          command == "compose" || command == "check" ||
                          command == "exchange" || command == "roundtrip";
  if (narg < 3 && needs_file) return Usage();
  const std::string mapping_arg = narg >= 3 ? argv[2] : "gen:exp:3,9";

  // Printers run on every exit path (destructors), after the command body.
  struct OutputPrinter {
    const ExecStats& stats;
    const Tracer& tracer;
    const OutputFlags& output;
    const std::string& command;
    std::chrono::steady_clock::time_point start =
        std::chrono::steady_clock::now();
    ~OutputPrinter() {
      const double wall_ms = std::chrono::duration<double, std::milli>(
                                 std::chrono::steady_clock::now() - start)
                                 .count();
      if (output.stats) {
        std::fprintf(stderr, "%s\n", stats.ToString().c_str());
      }
      if (output.stats_json) {
        char wall[32];
        std::snprintf(wall, sizeof(wall), "%.3f", wall_ms);
        std::fprintf(stderr, "{\"command\":\"%s\",\"wall_ms\":%s,\"stats\":%s}\n",
                     command.c_str(), wall, StatsJson(stats).c_str());
      }
      if (output.trace) {
        std::fprintf(stderr, "%s", tracer.ToText().c_str());
      }
      if (output.trace_json) {
        std::fprintf(stderr, "%s\n", tracer.ToJson().c_str());
      }
    }
  } printer{stats, tracer, output, command};

  // Commands that do not parse the mapping argument as a tgd mapping.
  if (command == "core") {
    Result<std::string> text = ReadFile(argv[2]);
    if (!text.ok()) return Fail(text.status());
    Result<Instance> instance = ParseInstanceInferSchema(*text);
    if (!instance.ok()) return Fail(instance.status());
    Result<Instance> core = CoreOfInstance(*instance, options.stats);
    if (!core.ok()) return Fail(core.status());
    std::printf("%s\n", core->ToString().c_str());
    return 0;
  }
  if (command == "so-invert") {
    Result<std::string> text = ReadFile(argv[2]);
    if (!text.ok()) return Fail(text.status());
    Result<SOTgdMapping> so = ParseSOTgdMapping(*text);
    if (!so.ok()) return Fail(so.status());
    Result<SOInverseMapping> inv = PolySOInverse(*so, options);
    if (!inv.ok()) return Fail(inv.status());
    std::printf("%s", inv->ToString().c_str());
    return 0;
  }

  Result<TgdMapping> mapping = LoadMapping(mapping_arg);
  if (!mapping.ok()) return Fail(mapping.status());

  if (command == "compose") {
    if (narg < 4) return Usage();
    Result<TgdMapping> second = LoadMapping(argv[3]);
    if (!second.ok()) return Fail(second.status());
    Result<SOTgdMapping> composed = ComposeTgdMappings(*mapping, *second, options);
    if (!composed.ok()) return Fail(composed.status());
    std::printf("%s", composed->ToString().c_str());
    return 0;
  }
  if (command == "check") {
    if (narg < 5) return Usage();
    Result<std::string> reverse_text = ReadFile(argv[3]);
    if (!reverse_text.ok()) return Fail(reverse_text.status());
    Result<ReverseMapping> parsed = ParseReverseMapping(*reverse_text);
    if (!parsed.ok()) return Fail(parsed.status());
    // Rebind to the full mapping schemas (the inferred ones may miss
    // relations the reverse mapping never mentions).
    ReverseMapping reverse(mapping->target, mapping->source, parsed->deps);
    Result<std::string> instance_text = ReadFile(argv[4]);
    if (!instance_text.ok()) return Fail(instance_text.status());
    Result<Instance> source = ParseInstance(*instance_text, *mapping->source);
    if (!source.ok()) return Fail(source.status());
    auto violation = CheckCRecovery(*mapping, reverse, {*source},
                                    PerRelationQueries(*mapping->source),
                                    options);
    if (!violation.ok()) return Fail(violation.status());
    if (violation->has_value()) {
      std::printf("NOT a sound recovery:\n%s\n",
                  (*violation)->description.c_str());
      return 2;
    }
    std::printf("sound recovery on this instance (certain answers of every "
                "per-relation query are contained in the source)\n");
    return 0;
  }

  if (command == "invert" || command == "maxrec") {
    Result<ReverseMapping> rec = (command == "invert")
                                     ? CqMaximumRecovery(*mapping, options)
                                     : MaximumRecovery(*mapping, options);
    if (!rec.ok()) return Fail(rec.status());
    std::printf("%s", rec->ToString().c_str());
    return 0;
  }
  if (command == "polyso") {
    Result<SOInverseMapping> inv = PolySOInverseOfTgds(*mapping, options);
    if (!inv.ok()) return Fail(inv.status());
    std::printf("%s", inv->ToString().c_str());
    return 0;
  }
  if (command == "rewrite") {
    if (narg < 4) return Usage();
    Result<ConjunctiveQuery> query = ParseCq(argv[3]);
    if (!query.ok()) return Fail(query.status());
    Result<UnionCq> rewriting = RewriteOverSource(*mapping, *query, options);
    if (!rewriting.ok()) return Fail(rewriting.status());
    std::printf("%s\n", rewriting->ToString().c_str());
    return 0;
  }
  if (command == "exchange" || command == "roundtrip") {
    if (narg < 4) return Usage();
    Result<std::string> instance_text = ReadFile(argv[3]);
    if (!instance_text.ok()) return Fail(instance_text.status());
    Result<Instance> source = ParseInstance(*instance_text, *mapping->source);
    if (!source.ok()) return Fail(source.status());
    Result<Instance> target = ChaseTgds(*mapping, *source, options);
    if (!target.ok()) return Fail(target.status());
    if (command == "exchange") {
      std::printf("%s\n", target->ToString().c_str());
      return 0;
    }
    Result<ReverseMapping> rec = CqMaximumRecovery(*mapping, options);
    if (!rec.ok()) return Fail(rec.status());
    Result<std::vector<Instance>> worlds =
        RoundTripWorlds(*mapping, *rec, *source, options);
    if (!worlds.ok()) return Fail(worlds.status());
    std::printf("target:    %s\n", target->ToString().c_str());
    for (const Instance& world : *worlds) {
      std::printf("recovered: %s\n", world.ToString().c_str());
    }
    return 0;
  }
  return Usage();
}

}  // namespace
}  // namespace mapinv

int main(int argc, char** argv) { return mapinv::Run(argc, argv); }
