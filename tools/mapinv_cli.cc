// mapinv_cli — command-line front end for the mapinv library.
//
// Usage:
//   mapinv_cli [flags] invert   <mapping-file>                 CQ-maximum recovery
//   mapinv_cli [flags] maxrec   <mapping-file>                 raw maximum recovery
//   mapinv_cli [flags] polyso   <mapping-file>                 PolySOInverse (via SO)
//   mapinv_cli [flags] rewrite  <mapping-file> '<query>'       source rewriting
//   mapinv_cli [flags] exchange <mapping-file> <instance-file> forward chase
//   mapinv_cli [flags] roundtrip <mapping-file> <instance-file> chase there and back
//
// Flags (anywhere on the command line, --name=value or --name value):
//   --max-facts=N      chase fact budget        --max-worlds=N   world budget
//   --max-disjuncts=N  rewriting budget         --threads=N      parallelism
//   --deadline-ms=N    wall-clock budget        --stats          counters to stderr
//
// Mapping files contain tgds in the parser syntax (one per line, '#'
// comments); instance files contain one `{ ... }` instance. Exit status is
// 0 on success, 1 on usage errors, 2 on processing errors.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "engine/execution_options.h"

#include "chase/chase_tgd.h"
#include "chase/round_trip.h"
#include "check/properties.h"
#include "eval/instance_core.h"
#include "inversion/compose.h"
#include "inversion/cq_maximum_recovery.h"
#include "inversion/maximum_recovery.h"
#include "inversion/polyso.h"
#include "parser/parser.h"
#include "rewrite/rewrite.h"

namespace mapinv {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: mapinv_cli <command> <mapping-file> [arg]\n"
               "commands:\n"
               "  invert    <mapping>             CQ-maximum recovery "
               "(Section 4)\n"
               "  maxrec    <mapping>             maximum recovery "
               "(disjunctions/equalities)\n"
               "  polyso    <mapping>             polynomial-time SO inverse "
               "(Section 5)\n"
               "  rewrite   <mapping> '<query>'   certain-answer source "
               "rewriting\n"
               "  exchange  <mapping> <instance>  chase forward\n"
               "  roundtrip <mapping> <instance>  chase forward then back "
               "through the inverse\n"
               "  so-invert <so-mapping>          PolySOInverse of a plain "
               "SO-tgd file\n"
               "  compose   <mapping1> <mapping2> SO-tgd composition by "
               "unfolding\n"
               "  check     <mapping> <reverse> <instance>\n"
               "                                  verify the reverse mapping "
               "is a sound recovery\n"
               "  core      <instance>            core of an instance with "
               "nulls\n"
               "flags: --max-facts=N --max-worlds=N --max-disjuncts=N "
               "--threads=N --deadline-ms=N --stats\n");
  return 1;
}

// Parses `--name=value` / `--name value` flags out of argv, leaving the
// positional arguments in `positional`. Returns false on a bad flag.
bool ParseFlags(int argc, char** argv, ExecutionOptions* options,
                bool* show_stats, std::vector<char*>* positional) {
  auto numeric = [](const char* text, uint64_t* out) {
    char* end = nullptr;
    *out = std::strtoull(text, &end, 10);
    return end != text && *end == '\0';
  };
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional->push_back(argv[i]);
      continue;
    }
    std::string name = arg;
    std::string value;
    bool have_value = false;
    if (size_t eq = arg.find('='); eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
      have_value = true;
    }
    if (name == "--stats") {
      *show_stats = true;
      continue;
    }
    if (!have_value) {
      if (i + 1 >= argc) return false;
      value = argv[++i];
    }
    uint64_t n = 0;
    if (!numeric(value.c_str(), &n)) return false;
    if (name == "--max-facts") {
      options->max_new_facts = static_cast<size_t>(n);
    } else if (name == "--max-worlds") {
      options->max_worlds = static_cast<size_t>(n);
    } else if (name == "--max-disjuncts") {
      options->max_disjuncts = static_cast<size_t>(n);
    } else if (name == "--threads") {
      options->threads = static_cast<int>(n);
    } else if (name == "--deadline-ms") {
      options->deadline_ms = static_cast<int64_t>(n);
    } else {
      return false;
    }
  }
  return true;
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

int Fail(const Status& status) {
  std::fprintf(stderr, "mapinv_cli: %s\n", status.ToString().c_str());
  return 2;
}

int Run(int argc, char** argv) {
  ExecutionOptions options;
  ExecStats stats;
  bool show_stats = false;
  std::vector<char*> args;
  if (!ParseFlags(argc, argv, &options, &show_stats, &args)) return Usage();
  options.stats = &stats;
  const int narg = static_cast<int>(args.size());
  argv = args.data();
  if (narg < 3) return Usage();
  const std::string command = argv[1];
  struct StatsPrinter {
    const ExecStats& stats;
    bool enabled;
    ~StatsPrinter() {
      if (enabled) std::fprintf(stderr, "%s\n", stats.ToString().c_str());
    }
  } stats_printer{stats, show_stats};

  // Commands that do not parse argv[2] as a tgd mapping.
  if (command == "core") {
    Result<std::string> text = ReadFile(argv[2]);
    if (!text.ok()) return Fail(text.status());
    Result<Instance> instance = ParseInstanceInferSchema(*text);
    if (!instance.ok()) return Fail(instance.status());
    Result<Instance> core = CoreOfInstance(*instance);
    if (!core.ok()) return Fail(core.status());
    std::printf("%s\n", core->ToString().c_str());
    return 0;
  }
  if (command == "so-invert") {
    Result<std::string> text = ReadFile(argv[2]);
    if (!text.ok()) return Fail(text.status());
    Result<SOTgdMapping> so = ParseSOTgdMapping(*text);
    if (!so.ok()) return Fail(so.status());
    Result<SOInverseMapping> inv = PolySOInverse(*so);
    if (!inv.ok()) return Fail(inv.status());
    std::printf("%s", inv->ToString().c_str());
    return 0;
  }

  Result<std::string> mapping_text = ReadFile(argv[2]);
  if (!mapping_text.ok()) return Fail(mapping_text.status());
  Result<TgdMapping> mapping = ParseTgdMapping(*mapping_text);
  if (!mapping.ok()) return Fail(mapping.status());

  if (command == "compose") {
    if (narg < 4) return Usage();
    Result<std::string> second_text = ReadFile(argv[3]);
    if (!second_text.ok()) return Fail(second_text.status());
    Result<TgdMapping> second = ParseTgdMapping(*second_text);
    if (!second.ok()) return Fail(second.status());
    Result<SOTgdMapping> composed = ComposeTgdMappings(*mapping, *second, options);
    if (!composed.ok()) return Fail(composed.status());
    std::printf("%s", composed->ToString().c_str());
    return 0;
  }
  if (command == "check") {
    if (narg < 5) return Usage();
    Result<std::string> reverse_text = ReadFile(argv[3]);
    if (!reverse_text.ok()) return Fail(reverse_text.status());
    Result<ReverseMapping> parsed = ParseReverseMapping(*reverse_text);
    if (!parsed.ok()) return Fail(parsed.status());
    // Rebind to the full mapping schemas (the inferred ones may miss
    // relations the reverse mapping never mentions).
    ReverseMapping reverse(mapping->target, mapping->source, parsed->deps);
    Result<std::string> instance_text = ReadFile(argv[4]);
    if (!instance_text.ok()) return Fail(instance_text.status());
    Result<Instance> source = ParseInstance(*instance_text, *mapping->source);
    if (!source.ok()) return Fail(source.status());
    auto violation = CheckCRecovery(*mapping, reverse, {*source},
                                    PerRelationQueries(*mapping->source),
                                    options);
    if (!violation.ok()) return Fail(violation.status());
    if (violation->has_value()) {
      std::printf("NOT a sound recovery:\n%s\n",
                  (*violation)->description.c_str());
      return 2;
    }
    std::printf("sound recovery on this instance (certain answers of every "
                "per-relation query are contained in the source)\n");
    return 0;
  }

  if (command == "invert" || command == "maxrec") {
    Result<ReverseMapping> rec = (command == "invert")
                                     ? CqMaximumRecovery(*mapping, options)
                                     : MaximumRecovery(*mapping, options);
    if (!rec.ok()) return Fail(rec.status());
    std::printf("%s", rec->ToString().c_str());
    return 0;
  }
  if (command == "polyso") {
    Result<SOInverseMapping> inv = PolySOInverseOfTgds(*mapping);
    if (!inv.ok()) return Fail(inv.status());
    std::printf("%s", inv->ToString().c_str());
    return 0;
  }
  if (command == "rewrite") {
    if (narg < 4) return Usage();
    Result<ConjunctiveQuery> query = ParseCq(argv[3]);
    if (!query.ok()) return Fail(query.status());
    Result<UnionCq> rewriting = RewriteOverSource(*mapping, *query, options);
    if (!rewriting.ok()) return Fail(rewriting.status());
    std::printf("%s\n", rewriting->ToString().c_str());
    return 0;
  }
  if (command == "exchange" || command == "roundtrip") {
    if (narg < 4) return Usage();
    Result<std::string> instance_text = ReadFile(argv[3]);
    if (!instance_text.ok()) return Fail(instance_text.status());
    Result<Instance> source = ParseInstance(*instance_text, *mapping->source);
    if (!source.ok()) return Fail(source.status());
    Result<Instance> target = ChaseTgds(*mapping, *source, options);
    if (!target.ok()) return Fail(target.status());
    if (command == "exchange") {
      std::printf("%s\n", target->ToString().c_str());
      return 0;
    }
    Result<ReverseMapping> rec = CqMaximumRecovery(*mapping, options);
    if (!rec.ok()) return Fail(rec.status());
    Result<std::vector<Instance>> worlds =
        RoundTripWorlds(*mapping, *rec, *source, options);
    if (!worlds.ok()) return Fail(worlds.status());
    std::printf("target:    %s\n", target->ToString().c_str());
    for (const Instance& world : *worlds) {
      std::printf("recovered: %s\n", world.ToString().c_str());
    }
    return 0;
  }
  return Usage();
}

}  // namespace
}  // namespace mapinv

int main(int argc, char** argv) { return mapinv::Run(argc, argv); }
