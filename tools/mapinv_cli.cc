// mapinv_cli — command-line front end for the mapinv library.
//
// Usage:
//   mapinv_cli invert   <mapping-file>                 CQ-maximum recovery
//   mapinv_cli maxrec   <mapping-file>                 raw maximum recovery
//   mapinv_cli polyso   <mapping-file>                 PolySOInverse (via SO)
//   mapinv_cli rewrite  <mapping-file> '<query>'       source rewriting
//   mapinv_cli exchange <mapping-file> <instance-file> forward chase
//   mapinv_cli roundtrip <mapping-file> <instance-file> chase there and back
//
// Mapping files contain tgds in the parser syntax (one per line, '#'
// comments); instance files contain one `{ ... }` instance. Exit status is
// 0 on success, 1 on usage errors, 2 on processing errors.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "chase/chase_tgd.h"
#include "chase/round_trip.h"
#include "check/properties.h"
#include "eval/instance_core.h"
#include "inversion/compose.h"
#include "inversion/cq_maximum_recovery.h"
#include "inversion/maximum_recovery.h"
#include "inversion/polyso.h"
#include "parser/parser.h"
#include "rewrite/rewrite.h"

namespace mapinv {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: mapinv_cli <command> <mapping-file> [arg]\n"
               "commands:\n"
               "  invert    <mapping>             CQ-maximum recovery "
               "(Section 4)\n"
               "  maxrec    <mapping>             maximum recovery "
               "(disjunctions/equalities)\n"
               "  polyso    <mapping>             polynomial-time SO inverse "
               "(Section 5)\n"
               "  rewrite   <mapping> '<query>'   certain-answer source "
               "rewriting\n"
               "  exchange  <mapping> <instance>  chase forward\n"
               "  roundtrip <mapping> <instance>  chase forward then back "
               "through the inverse\n"
               "  so-invert <so-mapping>          PolySOInverse of a plain "
               "SO-tgd file\n"
               "  compose   <mapping1> <mapping2> SO-tgd composition by "
               "unfolding\n"
               "  check     <mapping> <reverse> <instance>\n"
               "                                  verify the reverse mapping "
               "is a sound recovery\n"
               "  core      <instance>            core of an instance with "
               "nulls\n");
  return 1;
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

int Fail(const Status& status) {
  std::fprintf(stderr, "mapinv_cli: %s\n", status.ToString().c_str());
  return 2;
}

int Run(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string command = argv[1];

  // Commands that do not parse argv[2] as a tgd mapping.
  if (command == "core") {
    Result<std::string> text = ReadFile(argv[2]);
    if (!text.ok()) return Fail(text.status());
    Result<Instance> instance = ParseInstanceInferSchema(*text);
    if (!instance.ok()) return Fail(instance.status());
    Result<Instance> core = CoreOfInstance(*instance);
    if (!core.ok()) return Fail(core.status());
    std::printf("%s\n", core->ToString().c_str());
    return 0;
  }
  if (command == "so-invert") {
    Result<std::string> text = ReadFile(argv[2]);
    if (!text.ok()) return Fail(text.status());
    Result<SOTgdMapping> so = ParseSOTgdMapping(*text);
    if (!so.ok()) return Fail(so.status());
    Result<SOInverseMapping> inv = PolySOInverse(*so);
    if (!inv.ok()) return Fail(inv.status());
    std::printf("%s", inv->ToString().c_str());
    return 0;
  }

  Result<std::string> mapping_text = ReadFile(argv[2]);
  if (!mapping_text.ok()) return Fail(mapping_text.status());
  Result<TgdMapping> mapping = ParseTgdMapping(*mapping_text);
  if (!mapping.ok()) return Fail(mapping.status());

  if (command == "compose") {
    if (argc < 4) return Usage();
    Result<std::string> second_text = ReadFile(argv[3]);
    if (!second_text.ok()) return Fail(second_text.status());
    Result<TgdMapping> second = ParseTgdMapping(*second_text);
    if (!second.ok()) return Fail(second.status());
    Result<SOTgdMapping> composed = ComposeTgdMappings(*mapping, *second);
    if (!composed.ok()) return Fail(composed.status());
    std::printf("%s", composed->ToString().c_str());
    return 0;
  }
  if (command == "check") {
    if (argc < 5) return Usage();
    Result<std::string> reverse_text = ReadFile(argv[3]);
    if (!reverse_text.ok()) return Fail(reverse_text.status());
    Result<ReverseMapping> parsed = ParseReverseMapping(*reverse_text);
    if (!parsed.ok()) return Fail(parsed.status());
    // Rebind to the full mapping schemas (the inferred ones may miss
    // relations the reverse mapping never mentions).
    ReverseMapping reverse(mapping->target, mapping->source, parsed->deps);
    Result<std::string> instance_text = ReadFile(argv[4]);
    if (!instance_text.ok()) return Fail(instance_text.status());
    Result<Instance> source = ParseInstance(*instance_text, *mapping->source);
    if (!source.ok()) return Fail(source.status());
    auto violation = CheckCRecovery(*mapping, reverse, {*source},
                                    PerRelationQueries(*mapping->source));
    if (!violation.ok()) return Fail(violation.status());
    if (violation->has_value()) {
      std::printf("NOT a sound recovery:\n%s\n",
                  (*violation)->description.c_str());
      return 2;
    }
    std::printf("sound recovery on this instance (certain answers of every "
                "per-relation query are contained in the source)\n");
    return 0;
  }

  if (command == "invert" || command == "maxrec") {
    Result<ReverseMapping> rec = (command == "invert")
                                     ? CqMaximumRecovery(*mapping)
                                     : MaximumRecovery(*mapping);
    if (!rec.ok()) return Fail(rec.status());
    std::printf("%s", rec->ToString().c_str());
    return 0;
  }
  if (command == "polyso") {
    Result<SOInverseMapping> inv = PolySOInverseOfTgds(*mapping);
    if (!inv.ok()) return Fail(inv.status());
    std::printf("%s", inv->ToString().c_str());
    return 0;
  }
  if (command == "rewrite") {
    if (argc < 4) return Usage();
    Result<ConjunctiveQuery> query = ParseCq(argv[3]);
    if (!query.ok()) return Fail(query.status());
    Result<UnionCq> rewriting = RewriteOverSource(*mapping, *query);
    if (!rewriting.ok()) return Fail(rewriting.status());
    std::printf("%s\n", rewriting->ToString().c_str());
    return 0;
  }
  if (command == "exchange" || command == "roundtrip") {
    if (argc < 4) return Usage();
    Result<std::string> instance_text = ReadFile(argv[3]);
    if (!instance_text.ok()) return Fail(instance_text.status());
    Result<Instance> source = ParseInstance(*instance_text, *mapping->source);
    if (!source.ok()) return Fail(source.status());
    Result<Instance> target = ChaseTgds(*mapping, *source);
    if (!target.ok()) return Fail(target.status());
    if (command == "exchange") {
      std::printf("%s\n", target->ToString().c_str());
      return 0;
    }
    Result<ReverseMapping> rec = CqMaximumRecovery(*mapping);
    if (!rec.ok()) return Fail(rec.status());
    Result<std::vector<Instance>> worlds =
        RoundTripWorlds(*mapping, *rec, *source);
    if (!worlds.ok()) return Fail(worlds.status());
    std::printf("target:    %s\n", target->ToString().c_str());
    for (const Instance& world : *worlds) {
      std::printf("recovered: %s\n", world.ToString().c_str());
    }
    return 0;
  }
  return Usage();
}

}  // namespace
}  // namespace mapinv

int main(int argc, char** argv) { return mapinv::Run(argc, argv); }
