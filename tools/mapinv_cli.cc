// mapinv_cli — command-line front end for the mapinv library.
//
// Usage:
//   mapinv_cli [flags] invert   <mapping>                     CQ-maximum recovery
//   mapinv_cli [flags] maxrec   <mapping>                     raw maximum recovery
//   mapinv_cli [flags] polyso   <mapping>                     PolySOInverse (via SO)
//   mapinv_cli [flags] rewrite  <mapping> '<query>'           source rewriting
//   mapinv_cli [flags] exchange <mapping> <instance-file>     forward chase
//   mapinv_cli [flags] exchange-delta <mapping> <instance-file> <delta-file>
//                                                incremental chase maintenance
//   mapinv_cli [flags] roundtrip <mapping> <instance-file> [reverse-file]
//                                                             chase there and back
//
// Commands may also be spelled as flags (`--invert` ≡ `invert`). <mapping> is
// a tgd file in the parser syntax, or a synthetic generator spec:
//   gen:exp:N,K    exponential-recovery family (N producers, K conjuncts)
//   gen:chain:M    chain join of M binary relations
//   gen:copy:N,A   N copy tgds of arity A
//   gen:proj:N     N projection tgds
// Mapping-taking commands with no <mapping> argument default to gen:exp:3,9
// (the exponential family the benchmarks use).
//
// The CLI is a thin transport over the engine's Request/Response API
// (engine/request.h): it resolves file arguments to texts, builds one
// EngineRequest, and executes it via ExecuteRequest — exactly the entry
// point mapinv_serve uses, so the same request produces byte-identical
// canonical response JSON on either transport.
//
// Flags (anywhere on the command line, --name=value or --name value):
//   --max-facts=N      chase fact budget        --max-worlds=N   world budget
//   --max-disjuncts=N  rewriting budget         --threads=N      parallelism
//   --deadline-ms=N    wall-clock budget        --stats          counters to stderr
//   --on-exhausted=fail|partial   what a blown budget does: error out (default)
//                      or return the best sound partial result, flagged
//                      "partial":true in --stats-json
//   --cancel-after-ms=N           cancel the command from a timer thread
//                      (exercises cooperative cancellation end to end)
//   --trace            per-phase span tree to stderr (human-readable)
//   --trace-json       span tree as one JSON line to stderr
//   --stats-json       {"command","wall_ms","stats"} as one JSON line to stderr
//   --response-json    print the canonical EngineResponse JSON document to
//                      stdout instead of the rendered result
//   --dump-request     print the EngineRequest protocol JSON to stdout and
//                      exit without executing (feed it to mapinv_serve)
//   --memory-budget-bytes=N       spill chase targets to disk past N bytes of
//                      resident tuple payload (0 = unlimited, the default)
//   --spill-dir=PATH   directory for the (unlinked) spill file; empty uses
//                      the system temp directory
//   --vector-max-plan-steps=N     vectorized-executor plan-size ceiling;
//                      longer plans fall back to the scalar path (0 forces
//                      scalar everywhere)
//   --checkpoint-dir=PATH         make world enumeration (roundtrip) a
//                      durable job: commit the frontier to PATH so a killed
//                      run can be resumed (docs/JOBS.md)
//   --checkpoint-every=N          triggers between checkpoint commits
//                      (default 64)
//   --resume           continue the job in --checkpoint-dir from its newest
//                      good checkpoint instead of refusing to overwrite it
//   --save-instance=PATH          after an instance-producing command
//                      (exchange, exchange-delta, core), also persist the
//                      result as a mapinv snapshot file (docs/STORAGE.md)
//   --load-instance=PATH          read the <instance> payload from a snapshot
//                      file instead of a text file; the <instance> positional
//                      is then omitted
//
// Instance files contain one `{ ... }` instance. Exit status is 0 on
// success, 1 on usage errors, 2 on processing errors (including
// kResourceExhausted from --deadline-ms and the limit flags).

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "base/parse.h"
#include "engine/execution_options.h"
#include "engine/request.h"
#include "engine/trace.h"

namespace mapinv {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: mapinv_cli <command> <mapping> [arg]\n"
               "commands (also accepted as --command):\n"
               "  invert    <mapping>             CQ-maximum recovery "
               "(Section 4)\n"
               "  maxrec    <mapping>             maximum recovery "
               "(disjunctions/equalities)\n"
               "  polyso    <mapping>             polynomial-time SO inverse "
               "(Section 5)\n"
               "  rewrite   <mapping> '<query>'   certain-answer source "
               "rewriting\n"
               "  exchange  <mapping> <instance>  chase forward\n"
               "  exchange-delta <mapping> <instance> <delta>\n"
               "                                  chase, append the delta "
               "rows, absorb incrementally\n"
               "  roundtrip <mapping> <instance> [reverse]\n"
               "                                  chase forward then back; "
               "[reverse] (e.g. maxrec output)\n"
               "                                  replaces the default CQ "
               "recovery\n"
               "  so-invert <so-mapping>          PolySOInverse of a plain "
               "SO-tgd file\n"
               "  compose   <mapping1> <mapping2> SO-tgd composition by "
               "unfolding\n"
               "  check     <mapping> <reverse> <instance>\n"
               "                                  verify the reverse mapping "
               "is a sound recovery\n"
               "  core      <instance>            core of an instance with "
               "nulls\n"
               "<mapping> may be a file or a generator spec: gen:exp:N,K "
               "gen:chain:M gen:copy:N,A gen:proj:N\n"
               "flags: --max-facts=N --max-worlds=N --max-disjuncts=N "
               "--threads=N --deadline-ms=N\n"
               "       --on-exhausted=fail|partial --cancel-after-ms=N\n"
               "       --stats --stats-json --trace --trace-json\n"
               "       --response-json --dump-request\n"
               "       --memory-budget-bytes=N --spill-dir=PATH "
               "--vector-max-plan-steps=N\n"
               "       --checkpoint-dir=PATH --checkpoint-every=N --resume\n"
               "       --save-instance=PATH --load-instance=PATH\n");
  return 1;
}

// Prints a flag diagnostic; always returns false so callers can
// `return FlagError(...)` from ParseFlags.
bool FlagError(const std::string& message) {
  std::fprintf(stderr, "mapinv_cli: %s\n", message.c_str());
  return false;
}

// The command vocabulary, shared between positional and --flag spellings.
bool IsCommand(const std::string& name) {
  static const char* kCommands[] = {
      "invert", "maxrec",    "polyso",  "rewrite", "exchange",
      "exchange-delta", "roundtrip", "so-invert", "compose", "check", "core"};
  for (const char* c : kCommands) {
    if (name == c) return true;
  }
  return false;
}

struct OutputFlags {
  bool stats = false;
  bool stats_json = false;
  bool trace = false;
  bool trace_json = false;
  bool response_json = false;
  bool dump_request = false;
  /// Delay before the CLI cancels its own call; < 0 = never.
  int64_t cancel_after_ms = -1;
  /// Snapshot persistence (transport-side: the engine never touches files).
  std::string save_instance_path;
  std::string load_instance_path;
};

// Parses `--name=value` / `--name value` flags out of argv, leaving the
// positional arguments in `positional`. A flag spelling a command name
// (`--invert`) is rewritten to the positional command. Limit/deadline flags
// land in the request's options (so --dump-request carries them on the
// wire); cancel/output flags are transport-side. Returns false on a bad
// flag, after printing a diagnostic naming it.
bool ParseFlags(int argc, char** argv, RequestOptions* options,
                OutputFlags* output, std::vector<char*>* positional) {
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional->push_back(argv[i]);
      continue;
    }
    std::string name = arg;
    std::string value;
    bool have_value = false;
    if (size_t eq = arg.find('='); eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
      have_value = true;
    }
    if (!have_value && IsCommand(name.substr(2))) {
      positional->push_back(argv[i] + 2);
      continue;
    }
    if (name == "--stats") {
      output->stats = true;
      continue;
    }
    if (name == "--stats-json") {
      output->stats_json = true;
      continue;
    }
    if (name == "--trace") {
      output->trace = true;
      continue;
    }
    if (name == "--trace-json") {
      output->trace_json = true;
      continue;
    }
    if (name == "--response-json") {
      output->response_json = true;
      continue;
    }
    if (name == "--dump-request") {
      output->dump_request = true;
      continue;
    }
    if (name == "--resume") {
      options->resume = true;
      continue;
    }
    const bool known =
        name == "--max-facts" || name == "--max-worlds" ||
        name == "--max-disjuncts" || name == "--threads" ||
        name == "--deadline-ms" || name == "--cancel-after-ms" ||
        name == "--on-exhausted" || name == "--memory-budget-bytes" ||
        name == "--spill-dir" || name == "--vector-max-plan-steps" ||
        name == "--checkpoint-dir" || name == "--checkpoint-every" ||
        name == "--save-instance" || name == "--load-instance";
    if (!known) {
      return FlagError("unknown flag '" + name + "'");
    }
    if (!have_value) {
      if (i + 1 >= argc) {
        return FlagError("flag '" + name + "' expects a value");
      }
      value = argv[++i];
    }
    if (name == "--spill-dir") {
      options->spill_dir = value;
      continue;
    }
    if (name == "--checkpoint-dir") {
      if (value.empty()) {
        return FlagError("flag '--checkpoint-dir' expects a directory path");
      }
      options->checkpoint_dir = value;
      continue;
    }
    if (name == "--save-instance" || name == "--load-instance") {
      if (value.empty()) {
        return FlagError("flag '" + name + "' expects a file path");
      }
      (name == "--save-instance" ? output->save_instance_path
                                 : output->load_instance_path) = value;
      continue;
    }
    if (name == "--on-exhausted") {
      if (value == "fail") {
        options->on_exhausted = OnExhausted::kFail;
      } else if (value == "partial") {
        options->on_exhausted = OnExhausted::kPartial;
      } else {
        return FlagError("bad value '" + value +
                         "' for --on-exhausted (want 'fail' or 'partial')");
      }
      continue;
    }
    // The remaining flags are non-negative integers; each has a range that
    // its destination type can actually represent.
    const uint64_t max = (name == "--threads")
                             ? 1u << 16
                             : static_cast<uint64_t>(INT64_MAX);
    uint64_t n = 0;
    if (!ParseUint(value, max, &n)) {
      return FlagError("bad value '" + value + "' for " + name +
                       " (want an integer in [0, " + std::to_string(max) +
                       "])");
    }
    if (name == "--max-facts") {
      options->max_facts = n;
    } else if (name == "--max-worlds") {
      options->max_worlds = n;
    } else if (name == "--max-disjuncts") {
      options->max_disjuncts = n;
    } else if (name == "--threads") {
      options->threads = static_cast<int>(n);
    } else if (name == "--deadline-ms") {
      options->deadline_ms = static_cast<int64_t>(n);
    } else if (name == "--cancel-after-ms") {
      output->cancel_after_ms = static_cast<int64_t>(n);
    } else if (name == "--memory-budget-bytes") {
      options->memory_budget_bytes = n;
    } else if (name == "--vector-max-plan-steps") {
      options->vector_max_plan_steps = n;
    } else if (name == "--checkpoint-every") {
      options->checkpoint_every = n;
    }
  }
  return true;
}

// Arms a background thread that cancels `token` after a delay, unless the
// command finishes first (the destructor wakes and joins it).
class CancelTimer {
 public:
  void Arm(CancelToken* token, int64_t delay_ms) {
    thread_ = std::thread([this, token, delay_ms] {
      std::unique_lock<std::mutex> lock(mu_);
      if (!cv_.wait_for(lock, std::chrono::milliseconds(delay_ms),
                        [this] { return done_; })) {
        token->Cancel();
      }
    });
  }
  ~CancelTimer() {
    if (!thread_.joinable()) return;
    {
      std::lock_guard<std::mutex> lock(mu_);
      done_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool done_ = false;
  std::thread thread_;
};

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// A mapping argument is either a file path (read here; the engine never
// touches the filesystem) or a gen:<family>:<params> spec (passed through
// verbatim for the engine's LoadMappingSpec to resolve).
Result<std::string> ResolveMappingArg(const std::string& spec) {
  if (spec.rfind("gen:", 0) == 0) return spec;
  return ReadFile(spec);
}

int Fail(const Status& status) {
  std::fprintf(stderr, "mapinv_cli: %s\n", status.ToString().c_str());
  return 2;
}

int Run(int argc, char** argv) {
  EngineRequest request;
  ExecStats stats;
  OutputFlags output;
  std::vector<char*> args;
  if (!ParseFlags(argc, argv, &request.options, &output, &args)) {
    return Usage();
  }

  // The transport's standing configuration. Limit flags ride in the
  // request; the base carries the process-wide sinks (stats/trace/cancel)
  // and mirrors --threads so the request's value survives the engine's
  // "never raise the transport budget" clamp.
  ExecutionOptions base;
  base.stats = &stats;
  if (request.options.threads) base.threads = *request.options.threads;
  Tracer tracer;
  if (output.trace || output.trace_json) base.trace = &tracer;
  CancelToken cancel;
  CancelTimer cancel_timer;
  if (output.cancel_after_ms >= 0) {
    base.cancel = &cancel;
    cancel_timer.Arm(&cancel, output.cancel_after_ms);
  }

  const int narg = static_cast<int>(args.size());
  argv = args.data();
  if (narg < 2) return Usage();
  const std::string command = argv[1];
  if (!IsCommand(command)) {
    std::fprintf(stderr, "mapinv_cli: unknown command '%s'\n", command.c_str());
    return Usage();
  }
  request.command = command;
  // --load-instance binds the instance payload from a snapshot file; the
  // <instance> positional is then omitted and later positionals shift left.
  const bool have_load = !output.load_instance_path.empty();
  if (have_load) {
    Result<Instance> loaded = Instance::Load(output.load_instance_path);
    if (!loaded.ok()) return Fail(loaded.status());
    request.bound_instance =
        std::make_shared<const Instance>(std::move(*loaded));
  }
  // Mapping-taking commands run against the exponential family by default;
  // commands needing real files still require their arguments.
  const bool needs_file = (command == "core" && !have_load) ||
                          command == "so-invert" ||
                          command == "compose" || command == "check" ||
                          command == "exchange" || command == "roundtrip" ||
                          command == "exchange-delta";
  if (narg < 3 && needs_file) return Usage();
  const std::string mapping_arg = narg >= 3 ? argv[2] : "gen:exp:3,9";

  // Printers run on every exit path (destructors), after the command body.
  struct OutputPrinter {
    const ExecStats& stats;
    const Tracer& tracer;
    const OutputFlags& output;
    const std::string& command;
    std::chrono::steady_clock::time_point start =
        std::chrono::steady_clock::now();
    ~OutputPrinter() {
      const double wall_ms = std::chrono::duration<double, std::milli>(
                                 std::chrono::steady_clock::now() - start)
                                 .count();
      if (output.stats) {
        std::fprintf(stderr, "%s\n", stats.ToString().c_str());
      }
      if (output.stats_json) {
        char wall[32];
        std::snprintf(wall, sizeof(wall), "%.3f", wall_ms);
        std::fprintf(stderr, "{\"command\":\"%s\",\"wall_ms\":%s,\"stats\":%s}\n",
                     command.c_str(), wall,
                     StatsToJson(stats.Snapshot()).Serialize().c_str());
      }
      if (output.trace) {
        std::fprintf(stderr, "%s", tracer.ToText().c_str());
      }
      if (output.trace_json) {
        std::fprintf(stderr, "%s\n", tracer.ToJson().c_str());
      }
    }
  } printer{stats, tracer, output, command};

  // Resolve the positional arguments into request payload texts. Each
  // command keeps its historical arity checks (usage errors stay exit 1,
  // unreadable files exit 2).
  if (command == "core") {
    if (!have_load) {
      Result<std::string> text = ReadFile(argv[2]);
      if (!text.ok()) return Fail(text.status());
      request.instance = std::move(*text);
    }
  } else if (command == "so-invert") {
    Result<std::string> text = ReadFile(argv[2]);
    if (!text.ok()) return Fail(text.status());
    request.mapping = std::move(*text);
  } else {
    Result<std::string> mapping_text = ResolveMappingArg(mapping_arg);
    if (!mapping_text.ok()) return Fail(mapping_text.status());
    request.mapping = std::move(*mapping_text);
    if (command == "compose") {
      if (narg < 4) return Usage();
      Result<std::string> second = ResolveMappingArg(argv[3]);
      if (!second.ok()) return Fail(second.status());
      request.mapping2 = std::move(*second);
    } else if (command == "check") {
      if (narg < (have_load ? 4 : 5)) return Usage();
      Result<std::string> reverse_text = ReadFile(argv[3]);
      if (!reverse_text.ok()) return Fail(reverse_text.status());
      request.reverse = std::move(*reverse_text);
      if (!have_load) {
        Result<std::string> instance_text = ReadFile(argv[4]);
        if (!instance_text.ok()) return Fail(instance_text.status());
        request.instance = std::move(*instance_text);
      }
    } else if (command == "rewrite") {
      if (narg < 4) return Usage();
      request.query = argv[3];
    } else if (command == "exchange" || command == "roundtrip") {
      if (!have_load) {
        if (narg < 4) return Usage();
        Result<std::string> instance_text = ReadFile(argv[3]);
        if (!instance_text.ok()) return Fail(instance_text.status());
        request.instance = std::move(*instance_text);
      }
      // roundtrip [reverse]: drive the world enumeration with an explicit
      // reverse mapping (maxrec output, disjunctions included) instead of
      // the CQ-maximum recovery.
      const int reverse_arg = have_load ? 3 : 4;
      if (command == "roundtrip" && narg > reverse_arg) {
        Result<std::string> reverse_text = ReadFile(argv[reverse_arg]);
        if (!reverse_text.ok()) return Fail(reverse_text.status());
        request.reverse = std::move(*reverse_text);
      }
    } else if (command == "exchange-delta") {
      if (!have_load) {
        if (narg < 5) return Usage();
        Result<std::string> instance_text = ReadFile(argv[3]);
        if (!instance_text.ok()) return Fail(instance_text.status());
        request.instance = std::move(*instance_text);
      }
      const int delta_arg = have_load ? 3 : 4;
      if (narg < delta_arg + 1) return Usage();
      Result<std::string> delta_text = ReadFile(argv[delta_arg]);
      if (!delta_text.ok()) return Fail(delta_text.status());
      request.delta = std::move(*delta_text);
    }
  }

  if (output.dump_request) {
    const std::string wire = EngineRequestToJson(request).Serialize();
    std::fwrite(wire.data(), 1, wire.size(), stdout);
    std::fputc('\n', stdout);
    return 0;
  }

  const EngineResponse response = ExecuteRequest(request, base);
  if (!output.save_instance_path.empty() && response.status.ok()) {
    if (response.instance_artifact == nullptr) {
      return Fail(Status::InvalidArgument(
          "--save-instance needs an instance-producing command "
          "(exchange, exchange-delta, core)"));
    }
    if (Status saved =
            response.instance_artifact->Save(output.save_instance_path);
        !saved.ok()) {
      return Fail(saved);
    }
  }
  if (output.response_json) {
    const std::string wire = ResponseToJson(response).Serialize();
    std::fwrite(wire.data(), 1, wire.size(), stdout);
    std::fputc('\n', stdout);
  } else if (response.status.ok()) {
    std::fwrite(response.result.data(), 1, response.result.size(), stdout);
  }
  if (!response.status.ok()) {
    if (output.response_json) return 2;
    return Fail(response.status);
  }
  return response.kind == ResultKind::kCheckViolation ? 2 : 0;
}

}  // namespace
}  // namespace mapinv

int main(int argc, char** argv) { return mapinv::Run(argc, argv); }
