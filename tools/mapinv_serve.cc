// mapinv_serve — a multi-tenant inversion daemon over unix/TCP sockets.
//
// Speaks the length-prefixed JSON protocol of serve/protocol.h: every
// request is an EngineRequest document (or a serving verb: session.open,
// session.close, session.list, instance.put, metrics, server.stop), every
// response the canonical EngineResponse JSON — the same bytes mapinv_cli
// --response-json prints for the same request. docs/SERVING.md has the
// full schema.
//
// Usage:
//   mapinv_serve --unix=/tmp/mapinv.sock
//   mapinv_serve --tcp=0            # ephemeral port, printed on stdout
//
// Flags:
//   --unix=PATH          unix-domain listener (unlinked on shutdown)
//   --tcp=PORT           TCP listener (0 = ephemeral); --host=ADDR to bind
//                        something other than 127.0.0.1
//   --threads=N          per-request parallelism budget (default 1)
//   --pool-workers=N     shared pool size (default threads-1)
//   --max-connections=N  concurrent connections (default 128)
//   --max-inflight=N     requests executing at once (default max-connections)
//   --max-frame-bytes=N  frame payload cap (default 16 MiB)
//   --max-sessions=N     session capacity (default 256)
//   --max-facts=N --max-worlds=N --max-disjuncts=N --max-rules=N
//   --deadline-ms=N      default per-request limits (requests may override)
//   --on-exhausted=fail|partial   default brownout policy
//   --no-stop            refuse the server.stop request (signals only)
//   --session-ttl-ms=N   evict sessions idle for longer than N ms (0 = never,
//                        the default; evictions count in sessions_evicted)
//   --max-jobs=N         background jobs held at once (default 64)
//
// On startup prints exactly one line to stdout:
//   mapinv_serve: listening unix=<path> tcp=<host>:<port>
// (fields present for the configured listeners) — supervisors and the CI
// smoke job wait for it. SIGINT/SIGTERM drain and exit 0.

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "base/parse.h"
#include "serve/server.h"

namespace mapinv {
namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: mapinv_serve [--unix=PATH] [--tcp=PORT] [flags]\n"
      "flags: --host=ADDR --threads=N --pool-workers=N --max-connections=N\n"
      "       --max-inflight=N --max-frame-bytes=N --max-sessions=N\n"
      "       --max-facts=N --max-worlds=N --max-disjuncts=N --max-rules=N\n"
      "       --deadline-ms=N --on-exhausted=fail|partial --no-stop\n"
      "       --session-ttl-ms=N --max-jobs=N\n");
  return 1;
}

bool FlagError(const std::string& message) {
  std::fprintf(stderr, "mapinv_serve: %s\n", message.c_str());
  return false;
}

bool ParseFlags(int argc, char** argv, ServerConfig* config) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      return FlagError("unexpected argument '" + arg + "'");
    }
    std::string name = arg;
    std::string value;
    bool have_value = false;
    if (size_t eq = arg.find('='); eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
      have_value = true;
    }
    if (name == "--no-stop") {
      config->allow_stop = false;
      continue;
    }
    const bool known =
        name == "--unix" || name == "--tcp" || name == "--host" ||
        name == "--threads" || name == "--pool-workers" ||
        name == "--max-connections" || name == "--max-inflight" ||
        name == "--max-frame-bytes" || name == "--max-sessions" ||
        name == "--max-facts" || name == "--max-worlds" ||
        name == "--max-disjuncts" || name == "--max-rules" ||
        name == "--deadline-ms" || name == "--on-exhausted" ||
        name == "--session-ttl-ms" || name == "--max-jobs";
    if (!known) return FlagError("unknown flag '" + name + "'");
    if (!have_value) {
      if (i + 1 >= argc) {
        return FlagError("flag '" + name + "' expects a value");
      }
      value = argv[++i];
    }
    if (name == "--unix") {
      config->unix_path = value;
      continue;
    }
    if (name == "--host") {
      config->tcp_host = value;
      continue;
    }
    if (name == "--on-exhausted") {
      if (value == "fail") {
        config->on_exhausted = OnExhausted::kFail;
      } else if (value == "partial") {
        config->on_exhausted = OnExhausted::kPartial;
      } else {
        return FlagError("bad value '" + value +
                         "' for --on-exhausted (want 'fail' or 'partial')");
      }
      continue;
    }
    const uint64_t max = (name == "--tcp")       ? 65535
                         : (name == "--threads") ? (1u << 16)
                                                 : static_cast<uint64_t>(
                                                       INT64_MAX);
    uint64_t n = 0;
    if (!ParseUint(value, max, &n)) {
      return FlagError("bad value '" + value + "' for " + name +
                       " (want an integer in [0, " + std::to_string(max) +
                       "])");
    }
    if (name == "--tcp") {
      config->tcp_port = static_cast<int>(n);
    } else if (name == "--threads") {
      config->threads = static_cast<int>(n);
    } else if (name == "--pool-workers") {
      config->pool_workers = static_cast<int>(n);
    } else if (name == "--max-connections") {
      config->max_connections = static_cast<int>(n);
    } else if (name == "--max-inflight") {
      config->max_inflight = static_cast<int>(n);
    } else if (name == "--max-frame-bytes") {
      if (n == 0 || n > (1u << 30)) {
        return FlagError("bad value '" + value + "' for --max-frame-bytes");
      }
      config->max_frame_bytes = static_cast<uint32_t>(n);
    } else if (name == "--max-sessions") {
      config->max_sessions = static_cast<size_t>(n);
    } else if (name == "--max-facts") {
      config->limits.max_new_facts = static_cast<size_t>(n);
    } else if (name == "--max-worlds") {
      config->limits.max_worlds = static_cast<size_t>(n);
    } else if (name == "--max-disjuncts") {
      config->limits.max_disjuncts = static_cast<size_t>(n);
    } else if (name == "--max-rules") {
      config->limits.max_rules = static_cast<size_t>(n);
    } else if (name == "--deadline-ms") {
      config->limits.deadline_ms = static_cast<int64_t>(n);
    } else if (name == "--session-ttl-ms") {
      config->session_ttl_ms = static_cast<int64_t>(n);
    } else if (name == "--max-jobs") {
      config->max_jobs = static_cast<size_t>(n);
    }
  }
  return true;
}

int Run(int argc, char** argv) {
  ServerConfig config;
  if (!ParseFlags(argc, argv, &config)) return Usage();
  if (config.unix_path.empty() && config.tcp_port < 0) {
    std::fprintf(stderr,
                 "mapinv_serve: need --unix=PATH and/or --tcp=PORT\n");
    return Usage();
  }

  // Block the shutdown signals in every thread; a dedicated thread sigwaits
  // and turns them into a drain. (A raw handler could not call RequestStop —
  // it takes locks.)
  sigset_t signals;
  sigemptyset(&signals);
  sigaddset(&signals, SIGINT);
  sigaddset(&signals, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &signals, nullptr);

  const std::string tcp_host = config.tcp_host;
  Server server(std::move(config));
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "mapinv_serve: %s\n", started.ToString().c_str());
    return 2;
  }

  std::thread signal_thread([&signals, &server] {
    int sig = 0;
    sigwait(&signals, &sig);
    server.RequestStop();
  });

  std::string line = "mapinv_serve: listening";
  if (!server.unix_path().empty()) line += " unix=" + server.unix_path();
  if (server.tcp_port() >= 0) {
    line += " tcp=" + tcp_host + ":" + std::to_string(server.tcp_port());
  }
  std::printf("%s\n", line.c_str());
  std::fflush(stdout);

  server.Wait();
  // Unblock the signal thread if the stop came from a server.stop request
  // (the signal must target that thread: it is blocked everywhere else).
  pthread_kill(signal_thread.native_handle(), SIGTERM);
  signal_thread.join();
  return 0;
}

}  // namespace
}  // namespace mapinv

int main(int argc, char** argv) { return mapinv::Run(argc, argv); }
